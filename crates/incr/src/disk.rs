//! The persistent on-disk cache.
//!
//! One file per `(stage, key)` under the cache directory, named
//! `<stage>-<key hex>.bin`. Every entry is self-describing:
//!
//! ```text
//! magic "SILCINCR" | format version u32 | stage tag u8 | key fp 16B |
//! payload len u64  | payload            | FNV-128 checksum of payload
//! ```
//!
//! Loading is **corruption-tolerant by construction**: any mismatch —
//! wrong magic, stale version, foreign stage or key, truncation, bad
//! checksum, undecodable payload — logs one warning to stderr and
//! behaves exactly like a cache miss. A damaged cache can slow a build
//! down; it can never break one or change its output.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so concurrent batch jobs and interrupted runs leave
//! either the old entry or the new one, never a torn file.

use crate::engine::Stage;
use silc_geom::{Fp, FpHasher};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 8] = b"SILCINCR";

/// Bump on any incompatible change to the entry layout **or** to any
/// persisted type's [`crate::Persist`] encoding. Old entries are then
/// ignored (and overwritten), not misread.
pub const FORMAT_VERSION: u32 = 1;

/// Handle to a cache directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    /// Distinguishes temp files of concurrent writers within a process.
    seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache directory `{}`: {e}", dir.display()))?;
        Ok(DiskCache {
            dir,
            seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, stage: Stage, key: Fp) -> PathBuf {
        self.dir
            .join(format!("{}-{}.bin", stage.name, key.to_hex()))
    }

    /// Loads the payload for `(stage, key)`, or `None` on miss or on any
    /// form of damage (warned on stderr, then treated as a miss).
    pub fn load(&self, stage: Stage, key: Fp) -> Option<Vec<u8>> {
        let path = self.entry_path(stage, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                warn(&path, &format!("unreadable: {e}"));
                return None;
            }
        };
        match parse_entry(&bytes, stage, key) {
            Ok(payload) => Some(payload.to_vec()),
            Err(reason) => {
                warn(&path, &reason);
                None
            }
        }
    }

    /// Writes the payload for `(stage, key)` atomically, returning the
    /// total bytes written. I/O failures warn and return 0 — a cache
    /// that cannot store is slow, not broken.
    pub fn store(&self, stage: Stage, key: Fp, payload: &[u8]) -> u64 {
        let entry = build_entry(stage, key, payload);
        let path = self.entry_path(stage, key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = fs::write(&tmp, &entry).and_then(|()| fs::rename(&tmp, &path));
        match result {
            Ok(()) => entry.len() as u64,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                warn(&path, &format!("cannot store: {e}"));
                0
            }
        }
    }
}

fn warn(path: &Path, reason: &str) {
    eprintln!(
        "silc-incr: warning: ignoring cache entry `{}`: {reason}",
        path.display()
    );
}

fn checksum(payload: &[u8]) -> Fp {
    let mut h = FpHasher::new();
    h.write(payload);
    h.finish()
}

fn build_entry(stage: Stage, key: Fp, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 53);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(stage.tag);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out
}

fn parse_entry(bytes: &[u8], stage: Stage, key: Fp) -> Result<&[u8], String> {
    const HEADER: usize = 8 + 4 + 1 + 16 + 8;
    const TRAILER: usize = 16;
    if bytes.len() < HEADER + TRAILER {
        return Err("truncated header".into());
    }
    if &bytes[..8] != MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        ));
    }
    if bytes[12] != stage.tag {
        return Err(format!("stage tag {} is not `{}`", bytes[12], stage.name));
    }
    let entry_key = Fp::from_le_bytes(bytes[13..29].try_into().unwrap());
    if entry_key != key {
        return Err("key mismatch".into());
    }
    let payload_len = u64::from_le_bytes(bytes[29..37].try_into().unwrap());
    if bytes.len() as u64 != HEADER as u64 + payload_len + TRAILER as u64 {
        return Err("payload length mismatch".into());
    }
    let payload = &bytes[HEADER..HEADER + payload_len as usize];
    let stored = Fp::from_le_bytes(bytes[bytes.len() - TRAILER..].try_into().unwrap());
    if checksum(payload) != stored {
        return Err("checksum mismatch".into());
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("silc-incr-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Fp {
        Fp::from_raw(u128::from(n) | 0xdead << 64)
    }

    const STAGE: Stage = Stage::CIF;

    #[test]
    fn store_then_load_round_trips() {
        let cache = DiskCache::open(tmp_dir("rt")).unwrap();
        assert!(cache.load(STAGE, key(1)).is_none());
        let written = cache.store(STAGE, key(1), b"payload bytes");
        assert!(written > b"payload bytes".len() as u64);
        assert_eq!(cache.load(STAGE, key(1)).unwrap(), b"payload bytes");
        // Foreign key and foreign stage both miss.
        assert!(cache.load(STAGE, key(2)).is_none());
        assert!(cache.load(Stage::DRC, key(1)).is_none());
    }

    #[test]
    fn every_corruption_is_a_miss() {
        let cache = DiskCache::open(tmp_dir("corrupt")).unwrap();
        cache.store(STAGE, key(3), b"important");
        let path = cache
            .dir()
            .join(format!("{}-{}.bin", STAGE.name, key(3).to_hex()));
        let good = fs::read(&path).unwrap();

        // Flip one payload byte: checksum mismatch.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 20] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(cache.load(STAGE, key(3)).is_none());

        // Truncate: length mismatch.
        fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(cache.load(STAGE, key(3)).is_none());

        // Garbage: bad magic.
        fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(cache.load(STAGE, key(3)).is_none());

        // Stale version.
        let mut stale = good.clone();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&path, &stale).unwrap();
        assert!(cache.load(STAGE, key(3)).is_none());

        // Restoring the pristine bytes restores the hit.
        fs::write(&path, &good).unwrap();
        assert_eq!(cache.load(STAGE, key(3)).unwrap(), b"important");
    }

    #[test]
    fn overwrite_replaces_the_entry() {
        let cache = DiskCache::open(tmp_dir("ow")).unwrap();
        cache.store(STAGE, key(4), b"v1");
        cache.store(STAGE, key(4), b"v2");
        assert_eq!(cache.load(STAGE, key(4)).unwrap(), b"v2");
    }
}
