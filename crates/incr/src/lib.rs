//! `silc-incr` — the content-addressed incremental compilation engine.
//!
//! The classic silicon-compiler pipeline (SIL source → layout → DRC →
//! CIF → extraction; ISL → simulation/synthesis) is re-expressed here as
//! *queries*: pure functions keyed by a 128-bit fingerprint of their
//! inputs. An [`Engine`] memoizes query answers in memory and,
//! optionally, in a versioned on-disk cache, so recompiling an unchanged
//! design touches no geometry at all and editing one cell recomputes
//! only the stages whose inputs actually changed (*early cutoff* — keys
//! chain through output fingerprints, not source text).
//!
//! The three layers, bottom up:
//!
//! - [`codec`]: an explicit little-endian binary codec ([`Persist`])
//!   with total, panic-free decoding.
//! - [`disk`]: one self-describing file per entry — magic, format
//!   version, stage tag, key, length, payload, checksum. Any damage
//!   warns and degrades to a recompute; it can never break a build.
//! - [`engine`]: the memo table itself — lock-striped into shards with
//!   touch-on-hit LRU eviction and disk-hit promotion — shared by
//!   concurrent batch and serve workers, reporting `incr.*` counters
//!   through `silc-trace`.
//!
//! On top sit the [`pipeline`] stage queries and the [`batch`] driver
//! that compiles a whole manifest of jobs against one shared cache.
//!
//! ```
//! use silc_incr::{compile_sil, CompileOptions, Engine, JobStats};
//!
//! let engine = Engine::in_memory();
//! let source = "cell a() { box metal (0,0) (8,4); } place a() at (0,0);";
//! let mut cold = JobStats::default();
//! compile_sil(&engine, source, &CompileOptions::default(), &mut cold).unwrap();
//! let mut warm = JobStats::default();
//! compile_sil(&engine, source, &CompileOptions::default(), &mut warm).unwrap();
//! assert_eq!(warm.misses, 0); // every stage served from cache
//! ```

pub mod batch;
pub mod codec;
pub mod disk;
pub mod engine;
mod persist;
pub mod pipeline;

pub use batch::{parse_manifest, run_batch, JobKind, JobResult, JobSpec};
pub use codec::{Dec, DecodeError, Enc, Persist};
pub use disk::{DiskCache, FORMAT_VERSION};
pub use engine::{default_parallelism, Engine, EngineConfig, EvictPolicy, JobStats, Stage};
pub use pipeline::{
    cif_text, compile_sil, drc_report, elaborate, extract_signature, flat_regions, pla_products,
    pnr_products, pnr_sil, sim_results, synth_allocation, verify_against, verify_isl, verify_pla,
    verify_sil, CompileOptions, CompileOutput, ExtractSnapshot, FlatSnapshot, PlaSnapshot,
    PnrSnapshot, SimSnapshot, SynthSnapshot, VerifySnapshot,
};
pub use silc_exec::SimEngine;
