//! The memoizing query engine.
//!
//! An [`Engine`] answers *queries*: `(stage, input fingerprint) ->
//! value`. Answers come from, in order, the in-memory store, the
//! optional on-disk cache, and finally the supplied compute closure —
//! whose result is then written back to both. Stages chain their keys
//! through the fingerprints of intermediate *outputs*, which is what
//! gives early cutoff: when an edited source elaborates to an unchanged
//! library, every downstream stage keys identically and is served from
//! cache.
//!
//! The engine is `Sync`: batch workers and serve workers on separate
//! threads share one engine (and therefore one cache) through
//! `&Engine`. The memory tier is **lock-striped**: entries are spread
//! across N shards selected by fingerprint bits, each behind its own
//! mutex with its own recency order, so concurrent warm queries on
//! different shards never contend. Shard locks are held only for
//! lookups and insertions, never across a compute or a disk read.
//!
//! The entry budget is **globally pooled**: a lock-free occupancy
//! counter tracks the total across shards, and an inserting shard
//! evicts its own least-recent entries while the *global* total is over
//! budget. Victim selection stays shard-local (no cross-shard locking)
//! but a shard whose fingerprints happen to carry more than their share
//! of the hot set may outgrow `mem_entries / shards` — the eviction
//! pressure lands wherever the cold inserts land, instead of thrashing
//! whichever shard lost the hash lottery.
//!
//! Within a shard, eviction is touch-on-hit LRU by default (a hit
//! refreshes the entry, so hot entries survive capacity pressure); the
//! pre-shard insertion-order FIFO policy is kept as
//! [`EvictPolicy::Fifo`] for ablation baselines. Entries served from
//! the disk tier repeatedly are *promoted*: once a key's disk-hit count
//! reaches [`EngineConfig::promote_after`], it is pinned into the
//! memory tier and exempted from eviction (up to a per-shard pin
//! budget).

use crate::codec::{Dec, Enc, Persist};
use crate::disk::DiskCache;
use silc_geom::Fp;
use silc_trace::{names, Tracer};
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One pipeline stage, identifying a query family. The tag goes into
/// persisted entry headers (stable across builds); the name goes into
/// file names and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Short stable name, e.g. `"drc"`.
    pub name: &'static str,
    /// Stable one-byte id for entry headers.
    pub tag: u8,
}

impl Stage {
    /// SIL source → elaborated design.
    pub const ELABORATE: Stage = Stage {
        name: "elaborate",
        tag: 0,
    };
    /// Design → flattened per-layer geometry + die statistics.
    pub const FLATTEN: Stage = Stage {
        name: "flatten",
        tag: 1,
    };
    /// Flattened geometry + rules → DRC report.
    pub const DRC: Stage = Stage {
        name: "drc",
        tag: 2,
    };
    /// Design → CIF text.
    pub const CIF: Stage = Stage {
        name: "cif",
        tag: 3,
    };
    /// Design → extracted netlist summary.
    pub const EXTRACT: Stage = Stage {
        name: "extract",
        tag: 4,
    };
    /// Machine + cycle budget → simulation results.
    pub const SIM: Stage = Stage {
        name: "sim",
        tag: 5,
    };
    /// Machine → module allocation.
    pub const SYNTH: Stage = Stage {
        name: "synth",
        tag: 6,
    };
    /// PLA table → personality + layout products.
    pub const PLA: Stage = Stage {
        name: "pla",
        tag: 7,
    };
    /// Netlist + stack + floorplan → routed layout products.
    pub const PNR: Stage = Stage {
        name: "pnr",
        tag: 8,
    };
    /// Implementation + specification → equivalence verdict.
    pub const VERIFY: Stage = Stage {
        name: "verify",
        tag: 9,
    };
}

/// Memory-tier eviction policy.
///
/// [`EvictPolicy::Lru`] is the production policy. [`EvictPolicy::Fifo`]
/// reproduces the pre-shard engine's insertion-order eviction and is
/// kept as the single-lock ablation baseline for the serve load test
/// (`e9`) and the shard-equivalence proptests — eviction policy must
/// never change *results*, only hit rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Touch-on-hit least-recently-used: a hit refreshes the entry's
    /// recency, so repeatedly-hit entries survive capacity pressure.
    #[default]
    Lru,
    /// Insertion-order FIFO: entries age out in insertion order no
    /// matter how often they hit.
    Fifo,
}

/// The default worker-thread count for parallel front-ends (`silc
/// batch` job workers, `silc serve` compute workers): the machine's
/// available parallelism clamped to at most 8, falling back to 2 when
/// the machine cannot say.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Directory for the persistent cache; `None` = in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Total in-memory entry budget, pooled across shards: any one
    /// shard may outgrow its even share as long as the global total
    /// stays under budget.
    pub mem_entries: usize,
    /// Receives `incr.*` counters (hits, misses, bytes, evictions,
    /// promotions, per-shard occupancy).
    pub tracer: Tracer,
    /// Lock-stripe count for the memory tier; rounded up to a power of
    /// two and clamped to `1..=256`.
    pub shards: usize,
    /// Memory-tier eviction policy.
    pub policy: EvictPolicy,
    /// Disk hits on one key before it is promoted — pinned into the
    /// memory tier, exempt from eviction (up to half a shard's budget).
    /// `0` disables promotion.
    pub promote_after: u32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_dir: None,
            mem_entries: 4096,
            tracer: Tracer::disabled(),
            shards: 8,
            policy: EvictPolicy::Lru,
            promote_after: 2,
        }
    }
}

/// Per-job cache statistics, threaded through pipeline queries so a
/// batch run can report hits and misses per manifest line while the
/// engine's tracer accumulates the global totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Queries answered from cache (memory or disk).
    pub hits: u64,
    /// Queries that recomputed.
    pub misses: u64,
}

type MemKey = (u8, u128);

struct Slot {
    value: Arc<dyn Any + Send + Sync>,
    /// Last-touch sequence number; identifies this entry's one live
    /// record in the shard's recency queue.
    stamp: u64,
    /// Pinned entries (disk-tier promotions) are exempt from eviction.
    pinned: bool,
}

/// One lock stripe of the memory tier. The recency queue is
/// *lazy-stamped*: touching an entry pushes a fresh `(stamp, key)`
/// record and bumps the entry's stamp, leaving the old record behind as
/// a tombstone that eviction skips. The queue is compacted when
/// tombstones dominate.
#[derive(Default)]
struct Shard {
    entries: HashMap<MemKey, Slot>,
    order: VecDeque<(u64, MemKey)>,
    seq: u64,
    pinned: usize,
    /// Disk-hit counts per key, driving promotion.
    disk_touches: HashMap<MemKey, u32>,
}

impl Shard {
    fn touch(&mut self, key: MemKey, policy: EvictPolicy) {
        if policy != EvictPolicy::Lru {
            return;
        }
        if let Some(slot) = self.entries.get_mut(&key) {
            if slot.pinned {
                return;
            }
            self.seq += 1;
            slot.stamp = self.seq;
            self.order.push_back((self.seq, key));
            self.compact_if_bloated();
        }
    }

    /// Inserts (or replaces) an entry, then evicts this shard's
    /// least-recent entries while the *global* occupancy is over
    /// budget. Returns the number of evictions.
    ///
    /// The shard never evicts the entry it is inserting: if its own
    /// oldest live entry is `key`, the excess lives on some other shard
    /// and the overshoot (bounded by the shard count) is reclaimed by
    /// the next insert that lands there.
    fn insert(
        &mut self,
        key: MemKey,
        value: Arc<dyn Any + Send + Sync>,
        pin: bool,
        occupancy: &AtomicUsize,
        global_budget: usize,
    ) -> u64 {
        match self.entries.get_mut(&key) {
            Some(slot) => {
                slot.value = value;
                if pin && !slot.pinned {
                    slot.pinned = true;
                    self.pinned += 1;
                }
            }
            None => {
                self.seq += 1;
                self.entries.insert(
                    key,
                    Slot {
                        value,
                        stamp: self.seq,
                        pinned: pin,
                    },
                );
                occupancy.fetch_add(1, Ordering::Relaxed);
                if pin {
                    self.pinned += 1;
                } else {
                    self.order.push_back((self.seq, key));
                }
            }
        }
        let mut evicted = 0;
        while occupancy.load(Ordering::Relaxed) > global_budget {
            let Some(&(stamp, old)) = self.order.front() else {
                break;
            };
            let live = self
                .entries
                .get(&old)
                .is_some_and(|slot| slot.stamp == stamp && !slot.pinned);
            if live && old == key {
                break;
            }
            self.order.pop_front();
            if live {
                self.entries.remove(&old);
                occupancy.fetch_sub(1, Ordering::Relaxed);
                evicted += 1;
            }
        }
        self.compact_if_bloated();
        evicted
    }

    fn compact_if_bloated(&mut self) {
        if self.order.len() > self.entries.len() * 2 + 16 {
            let entries = &self.entries;
            self.order.retain(|&(stamp, key)| {
                entries
                    .get(&key)
                    .is_some_and(|slot| slot.stamp == stamp && !slot.pinned)
            });
        }
    }
}

/// Returns interned `("incr.shardN.hits", "incr.shardN.entries")`
/// counter names for shard `N`. Names are leaked once per distinct
/// shard index process-wide (the tracer API wants `&'static str`).
fn shard_counter_names(i: usize) -> (&'static str, &'static str) {
    static NAMES: OnceLock<Mutex<HashMap<usize, (&'static str, &'static str)>>> = OnceLock::new();
    let mut table = NAMES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("shard name table");
    *table.entry(i).or_insert_with(|| {
        (
            Box::leak(format!("incr.shard{i}.hits").into_boxed_str()),
            Box::leak(format!("incr.shard{i}.entries").into_boxed_str()),
        )
    })
}

/// The memoizing query engine. See the module docs.
pub struct Engine {
    shards: Vec<Mutex<Shard>>,
    /// Global entry budget, pooled across shards.
    budget: usize,
    /// Total live entries across all shards; lets an inserting shard
    /// evict against the global budget without touching other shards'
    /// locks.
    occupancy: AtomicUsize,
    /// Per-shard cap on pinned entries.
    pin_cap: usize,
    policy: EvictPolicy,
    promote_after: u32,
    disk: Option<DiskCache>,
    tracer: Tracer,
    /// `(hits, entries)` counter names per shard; built only when the
    /// tracer is enabled so the disabled path never formats or leaks.
    shard_names: Option<Vec<(&'static str, &'static str)>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("disk", &self.disk)
            .field("shards", &self.shards.len())
            .field("budget", &self.budget)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine from `config`, opening (and creating) the cache
    /// directory when one is given.
    ///
    /// # Errors
    ///
    /// Returns a message when the cache directory cannot be created.
    pub fn new(config: EngineConfig) -> Result<Engine, String> {
        let disk = match config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        let shard_count = config.shards.clamp(1, 256).next_power_of_two();
        let budget = config.mem_entries.max(1);
        let share = budget.div_ceil(shard_count).max(1);
        let shard_names = config
            .tracer
            .is_enabled()
            .then(|| (0..shard_count).map(shard_counter_names).collect());
        Ok(Engine {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            budget,
            occupancy: AtomicUsize::new(0),
            pin_cap: (share / 2).max(1),
            policy: config.policy,
            promote_after: config.promote_after,
            disk,
            tracer: config.tracer,
            shard_names,
        })
    }

    /// An engine with no persistence and a disabled tracer.
    ///
    /// # Panics
    ///
    /// Never — the default configuration cannot fail.
    pub fn in_memory() -> Engine {
        Engine::new(EngineConfig::default()).expect("in-memory engine cannot fail")
    }

    /// The tracer pipeline stages should record their spans on.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// True when a persistent cache directory is attached.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// The number of lock stripes in the memory tier.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current memory-tier occupancy: `(entries, pinned)` summed over
    /// all shards.
    pub fn mem_occupancy(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(e, p), shard| {
            let shard = shard.lock().expect("engine shard");
            (e + shard.entries.len(), p + shard.pinned)
        })
    }

    fn shard_index(&self, (tag, raw): MemKey) -> usize {
        let folded = (raw as u64) ^ ((raw >> 64) as u64) ^ (u64::from(tag) << 56);
        (folded as usize) & (self.shards.len() - 1)
    }

    /// Answers the query `(stage, key)`, computing (and caching) on
    /// miss. Results are shared: repeated queries return clones of one
    /// `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error, prefixed with the stage
    /// name (`"elaborate: ..."`), so callers — the CLI, batch report
    /// rows, serve responses — always know *which* stage failed. Cache
    /// failures are never errors — a damaged or unwritable cache
    /// degrades to recomputes.
    pub fn query<T, F>(
        &self,
        stage: Stage,
        key: Fp,
        stats: &mut JobStats,
        compute: F,
    ) -> Result<Arc<T>, String>
    where
        T: Persist + Send + Sync + 'static,
        F: FnOnce() -> Result<T, String>,
    {
        let mem_key: MemKey = (stage.tag, key.raw());
        let idx = self.shard_index(mem_key);
        {
            let mut shard = self.shards[idx].lock().expect("engine shard");
            if let Some(slot) = shard.entries.get(&mem_key) {
                if let Ok(value) = Arc::clone(&slot.value).downcast::<T>() {
                    shard.touch(mem_key, self.policy);
                    drop(shard);
                    stats.hits += 1;
                    self.tracer.add(names::INCR_HIT, 1);
                    self.tracer.add(names::INCR_MEM_HIT, 1);
                    if let Some(names) = &self.shard_names {
                        self.tracer.add(names[idx].0, 1);
                    }
                    return Ok(value);
                }
            }
        }
        if let Some(disk) = &self.disk {
            if let Some(payload) = disk.load(stage, key) {
                let mut d = Dec::new(&payload);
                match T::decode(&mut d) {
                    Ok(value) if d.is_done() => {
                        let value = Arc::new(value);
                        self.insert_after_disk_hit(idx, mem_key, Arc::clone(&value) as _);
                        stats.hits += 1;
                        self.tracer.add(names::INCR_HIT, 1);
                        self.tracer.add(names::INCR_DISK_HIT, 1);
                        return Ok(value);
                    }
                    Ok(_) => eprintln!(
                        "silc-incr: warning: stale `{}` cache entry (trailing bytes); recomputing",
                        stage.name
                    ),
                    Err(reason) => eprintln!(
                        "silc-incr: warning: undecodable `{}` cache entry ({reason}); recomputing",
                        stage.name
                    ),
                }
            }
        }
        let value = Arc::new(compute().map_err(|e| format!("{}: {e}", stage.name))?);
        stats.misses += 1;
        self.tracer.add(names::INCR_MISS, 1);
        self.insert_mem(idx, mem_key, Arc::clone(&value) as _, false);
        if let Some(disk) = &self.disk {
            let mut e = Enc::new();
            value.encode(&mut e);
            let written = disk.store(stage, key, &e.into_bytes());
            self.tracer.add(names::INCR_STORE_BYTES, written);
        }
        Ok(value)
    }

    /// Re-inserts a disk-tier hit into the memory tier, promoting
    /// (pinning) the entry once its disk-hit count reaches the
    /// threshold — a hot entry that keeps falling out of memory stops
    /// paying the decode tax.
    fn insert_after_disk_hit(&self, idx: usize, key: MemKey, value: Arc<dyn Any + Send + Sync>) {
        let pin = {
            let mut shard = self.shards[idx].lock().expect("engine shard");
            if shard.disk_touches.len() > self.budget * 8 / self.shards.len() + 64 {
                shard.disk_touches.clear();
            }
            let touches = shard.disk_touches.entry(key).or_insert(0);
            *touches += 1;
            self.promote_after > 0 && *touches >= self.promote_after && shard.pinned < self.pin_cap
        };
        if pin {
            self.tracer.add(names::INCR_PROMOTED, 1);
        }
        self.insert_mem(idx, key, value, pin);
    }

    fn insert_mem(&self, idx: usize, key: MemKey, value: Arc<dyn Any + Send + Sync>, pin: bool) {
        let (evicted, occupied) = {
            let mut shard = self.shards[idx].lock().expect("engine shard");
            let evicted = shard.insert(key, value, pin, &self.occupancy, self.budget);
            (evicted, shard.entries.len())
        };
        if evicted > 0 {
            self.tracer.add(names::INCR_EVICTIONS, evicted);
        }
        if let Some(names) = &self.shard_names {
            self.tracer.gauge_max(names[idx].1, occupied as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn key(n: u64) -> Fp {
        Fp::from_raw(u128::from(n) | 0xfeed << 96)
    }

    #[test]
    fn memoizes_and_counts() {
        let engine = Engine::in_memory();
        let calls = AtomicU64::new(0);
        let mut stats = JobStats::default();
        let compute = || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(99u64)
        };
        let a = engine
            .query(Stage::DRC, key(1), &mut stats, compute)
            .unwrap();
        let b = engine
            .query(Stage::DRC, key(1), &mut stats, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(0u64)
            })
            .unwrap();
        assert_eq!((*a, *b), (99, 99));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(stats, JobStats { hits: 1, misses: 1 });
    }

    #[test]
    fn stages_do_not_collide() {
        let engine = Engine::in_memory();
        let mut stats = JobStats::default();
        engine
            .query(Stage::CIF, key(2), &mut stats, || Ok("cif".to_string()))
            .unwrap();
        let drc = engine
            .query(Stage::DRC, key(2), &mut stats, || Ok("drc".to_string()))
            .unwrap();
        assert_eq!(*drc, "drc");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        // The serve daemon and batch workers hand `&Engine` to many
        // threads at once; the engine must stay `Send + Sync` (the
        // shard locks are the only interior mutability, held
        // per-operation).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineConfig>();
    }

    #[test]
    fn errors_carry_the_failing_stage_name_and_are_not_cached() {
        let engine = Engine::in_memory();
        let mut stats = JobStats::default();
        let failed: Result<Arc<u64>, String> =
            engine.query(Stage::SIM, key(3), &mut stats, || Err("boom".into()));
        assert_eq!(failed.unwrap_err(), "sim: boom");
        let ok = engine
            .query(Stage::SIM, key(3), &mut stats, || Ok(5u64))
            .unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn eviction_respects_capacity() {
        let tracer = Tracer::enabled();
        let engine = Engine::new(EngineConfig {
            mem_entries: 2,
            shards: 1,
            tracer: tracer.clone(),
            ..EngineConfig::default()
        })
        .unwrap();
        let mut stats = JobStats::default();
        for n in 0..5 {
            engine
                .query(Stage::SIM, key(10 + n), &mut stats, || Ok(n))
                .unwrap();
        }
        // Oldest entries were evicted: re-querying them recomputes (and
        // that re-insert evicts once more).
        engine
            .query(Stage::SIM, key(10), &mut stats, || Ok(0u64))
            .unwrap();
        assert_eq!(stats.misses, 6);
        let report = tracer.finish();
        assert_eq!(report.counter(names::INCR_EVICTIONS), Some(4));
        assert_eq!(report.counter(names::INCR_MISS), Some(6));
    }

    /// The satellite regression: under the old insertion-order FIFO a
    /// hot entry inserted early was evicted before cold recent ones; LRU
    /// must keep it alive through arbitrary capacity pressure.
    #[test]
    fn repeatedly_hit_entry_survives_capacity_pressure() {
        let pressure = |policy: EvictPolicy| {
            let engine = Engine::new(EngineConfig {
                mem_entries: 2,
                shards: 1,
                policy,
                ..EngineConfig::default()
            })
            .unwrap();
            let hot_computes = AtomicU64::new(0);
            let mut stats = JobStats::default();
            let query_hot = |stats: &mut JobStats| {
                engine
                    .query(Stage::SIM, key(1000), stats, || {
                        hot_computes.fetch_add(1, Ordering::Relaxed);
                        Ok(42u64)
                    })
                    .unwrap()
            };
            query_hot(&mut stats);
            for n in 0..6 {
                engine
                    .query(Stage::SIM, key(2000 + n), &mut stats, || Ok(n))
                    .unwrap();
                query_hot(&mut stats);
            }
            hot_computes.load(Ordering::Relaxed)
        };
        assert_eq!(pressure(EvictPolicy::Lru), 1, "LRU evicted a hot entry");
        assert!(
            pressure(EvictPolicy::Fifo) > 1,
            "the FIFO baseline should demonstrate the old bug"
        );
    }

    #[test]
    fn shards_spread_entries_and_count_per_shard_hits() {
        let tracer = Tracer::enabled();
        let engine = Engine::new(EngineConfig {
            shards: 8,
            tracer: tracer.clone(),
            ..EngineConfig::default()
        })
        .unwrap();
        assert_eq!(engine.shard_count(), 8);
        let mut stats = JobStats::default();
        for n in 0..32 {
            engine
                .query(Stage::SIM, key(n), &mut stats, || Ok(n))
                .unwrap();
        }
        assert_eq!(engine.mem_occupancy(), (32, 0));
        // key(0) lands on shard 0 (low fingerprint bits); a second
        // query is a memory hit counted against that shard.
        engine
            .query(Stage::SIM, key(0), &mut stats, || Ok(0u64))
            .unwrap();
        let report = tracer.finish();
        assert_eq!(report.counter("incr.shard0.hits"), Some(1));
        assert!(report.counter("incr.shard0.entries").unwrap_or(0) >= 1);
    }

    /// The budget is pooled: when the hash lottery concentrates the
    /// working set on one shard, that shard may hold more than its even
    /// share (here: the whole budget) instead of thrashing, and a fresh
    /// insert on an *empty* shard is never its own eviction victim.
    #[test]
    fn shard_may_outgrow_its_even_share_under_a_pooled_budget() {
        let engine = Engine::new(EngineConfig {
            shards: 2,
            mem_entries: 4,
            ..EngineConfig::default()
        })
        .unwrap();
        let mut stats = JobStats::default();
        // key(n) lands on shard n & 1: even keys all hash to shard 0.
        for n in [0u64, 2, 4, 6] {
            engine
                .query(Stage::SIM, key(n), &mut stats, || Ok(n))
                .unwrap();
        }
        assert_eq!(engine.mem_occupancy(), (4, 0));
        // A fifth even key evicts shard 0's oldest; the survivors — a
        // full global budget on one shard — still hit.
        engine
            .query(Stage::SIM, key(8), &mut stats, || Ok(8u64))
            .unwrap();
        assert_eq!(engine.mem_occupancy(), (4, 0));
        for n in [2u64, 4, 6, 8] {
            engine
                .query(Stage::SIM, key(n), &mut stats, || Ok(0u64))
                .unwrap();
        }
        assert_eq!(stats, JobStats { hits: 4, misses: 5 });
        // Shard 1 is empty and the pool is full: its first insert must
        // survive (bounded overshoot), not evict itself.
        engine
            .query(Stage::SIM, key(1), &mut stats, || Ok(1u64))
            .unwrap();
        engine
            .query(Stage::SIM, key(1), &mut stats, || Ok(0u64))
            .unwrap();
        assert_eq!(stats, JobStats { hits: 5, misses: 6 });
    }

    #[test]
    fn disk_hits_above_the_touch_threshold_are_pinned() {
        let dir = std::env::temp_dir().join(format!("silc-incr-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let warm = Engine::new(EngineConfig {
                cache_dir: Some(dir.clone()),
                ..EngineConfig::default()
            })
            .unwrap();
            let mut stats = JobStats::default();
            warm.query(Stage::CIF, key(77), &mut stats, || Ok("hot".to_string()))
                .unwrap();
        }
        let tracer = Tracer::enabled();
        let engine = Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            mem_entries: 2,
            shards: 1,
            promote_after: 2,
            tracer: tracer.clone(),
            ..EngineConfig::default()
        })
        .unwrap();
        let mut stats = JobStats::default();
        let hot = |engine: &Engine, stats: &mut JobStats| {
            engine
                .query(Stage::CIF, key(77), stats, || {
                    Err::<String, _>("must come from cache".into())
                })
                .unwrap()
        };
        // First disk hit: touch 1, not yet pinned; push it out.
        hot(&engine, &mut stats);
        for n in 0..2 {
            engine
                .query(Stage::CIF, key(200 + n), &mut stats, || Ok(n.to_string()))
                .unwrap();
        }
        // Second disk hit crosses the threshold: pinned from here on.
        hot(&engine, &mut stats);
        for n in 0..4 {
            engine
                .query(Stage::CIF, key(300 + n), &mut stats, || Ok(n.to_string()))
                .unwrap();
        }
        // Despite heavy pressure in a 2-entry shard, the pinned entry
        // answers from memory (the error closure proves no recompute,
        // the counters prove no third disk read).
        let value = hot(&engine, &mut stats);
        assert_eq!(*value, "hot");
        assert_eq!(engine.mem_occupancy().1, 1, "exactly one pinned entry");
        let report = tracer.finish();
        assert_eq!(report.counter(names::INCR_PROMOTED), Some(1));
        assert_eq!(report.counter(names::INCR_DISK_HIT), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_parallelism_is_clamped() {
        let n = default_parallelism();
        assert!((1..=8).contains(&n), "default_parallelism() = {n}");
    }

    #[test]
    fn disk_round_trip_survives_a_new_engine() {
        let dir = std::env::temp_dir().join(format!("silc-incr-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = |tracer: Tracer| EngineConfig {
            cache_dir: Some(dir.clone()),
            mem_entries: 4096,
            tracer,
            ..EngineConfig::default()
        };
        let mut stats = JobStats::default();
        {
            let engine = Engine::new(config(Tracer::disabled())).unwrap();
            engine
                .query(Stage::CIF, key(7), &mut stats, || {
                    Ok("persisted".to_string())
                })
                .unwrap();
        }
        let tracer = Tracer::enabled();
        let engine = Engine::new(config(tracer.clone())).unwrap();
        let value = engine
            .query(Stage::CIF, key(7), &mut stats, || {
                Err::<String, _>("should have hit disk".into())
            })
            .unwrap();
        assert_eq!(*value, "persisted");
        let report = tracer.finish();
        assert_eq!(report.counter(names::INCR_DISK_HIT), Some(1));
        assert_eq!(report.counter(names::INCR_HIT), Some(1));
    }
}
