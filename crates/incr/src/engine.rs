//! The memoizing query engine.
//!
//! An [`Engine`] answers *queries*: `(stage, input fingerprint) ->
//! value`. Answers come from, in order, the in-memory store, the
//! optional on-disk cache, and finally the supplied compute closure —
//! whose result is then written back to both. Stages chain their keys
//! through the fingerprints of intermediate *outputs*, which is what
//! gives early cutoff: when an edited source elaborates to an unchanged
//! library, every downstream stage keys identically and is served from
//! cache.
//!
//! The engine is `Sync`: batch workers on separate threads share one
//! engine (and therefore one cache) through `&Engine`. The store lock is
//! held only for lookups and insertions, never across a compute.

use crate::codec::{Dec, Enc, Persist};
use crate::disk::DiskCache;
use silc_geom::Fp;
use silc_trace::{names, Tracer};
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One pipeline stage, identifying a query family. The tag goes into
/// persisted entry headers (stable across builds); the name goes into
/// file names and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Short stable name, e.g. `"drc"`.
    pub name: &'static str,
    /// Stable one-byte id for entry headers.
    pub tag: u8,
}

impl Stage {
    /// SIL source → elaborated design.
    pub const ELABORATE: Stage = Stage {
        name: "elaborate",
        tag: 0,
    };
    /// Design → flattened per-layer geometry + die statistics.
    pub const FLATTEN: Stage = Stage {
        name: "flatten",
        tag: 1,
    };
    /// Flattened geometry + rules → DRC report.
    pub const DRC: Stage = Stage {
        name: "drc",
        tag: 2,
    };
    /// Design → CIF text.
    pub const CIF: Stage = Stage {
        name: "cif",
        tag: 3,
    };
    /// Design → extracted netlist summary.
    pub const EXTRACT: Stage = Stage {
        name: "extract",
        tag: 4,
    };
    /// Machine + cycle budget → simulation results.
    pub const SIM: Stage = Stage {
        name: "sim",
        tag: 5,
    };
    /// Machine → module allocation.
    pub const SYNTH: Stage = Stage {
        name: "synth",
        tag: 6,
    };
    /// PLA table → personality + layout products.
    pub const PLA: Stage = Stage {
        name: "pla",
        tag: 7,
    };
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Directory for the persistent cache; `None` = in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Maximum in-memory entries before FIFO eviction.
    pub mem_entries: usize,
    /// Receives `incr.*` counters (hits, misses, bytes, evictions).
    pub tracer: Tracer,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_dir: None,
            mem_entries: 4096,
            tracer: Tracer::disabled(),
        }
    }
}

/// Per-job cache statistics, threaded through pipeline queries so a
/// batch run can report hits and misses per manifest line while the
/// engine's tracer accumulates the global totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Queries answered from cache (memory or disk).
    pub hits: u64,
    /// Queries that recomputed.
    pub misses: u64,
}

type MemKey = (u8, u128);

#[derive(Default)]
struct MemStore {
    entries: HashMap<MemKey, Arc<dyn Any + Send + Sync>>,
    order: VecDeque<MemKey>,
}

/// The memoizing query engine. See the module docs.
pub struct Engine {
    mem: Mutex<MemStore>,
    disk: Option<DiskCache>,
    mem_entries: usize,
    tracer: Tracer,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("disk", &self.disk)
            .field("mem_entries", &self.mem_entries)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine from `config`, opening (and creating) the cache
    /// directory when one is given.
    ///
    /// # Errors
    ///
    /// Returns a message when the cache directory cannot be created.
    pub fn new(config: EngineConfig) -> Result<Engine, String> {
        let disk = match config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        Ok(Engine {
            mem: Mutex::new(MemStore::default()),
            disk,
            mem_entries: config.mem_entries.max(1),
            tracer: config.tracer,
        })
    }

    /// An engine with no persistence and a disabled tracer.
    ///
    /// # Panics
    ///
    /// Never — the default configuration cannot fail.
    pub fn in_memory() -> Engine {
        Engine::new(EngineConfig::default()).expect("in-memory engine cannot fail")
    }

    /// The tracer pipeline stages should record their spans on.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// True when a persistent cache directory is attached.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// Answers the query `(stage, key)`, computing (and caching) on
    /// miss. Results are shared: repeated queries return clones of one
    /// `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error, prefixed with the stage
    /// name (`"elaborate: ..."`), so callers — the CLI, batch report
    /// rows, serve responses — always know *which* stage failed. Cache
    /// failures are never errors — a damaged or unwritable cache
    /// degrades to recomputes.
    pub fn query<T, F>(
        &self,
        stage: Stage,
        key: Fp,
        stats: &mut JobStats,
        compute: F,
    ) -> Result<Arc<T>, String>
    where
        T: Persist + Send + Sync + 'static,
        F: FnOnce() -> Result<T, String>,
    {
        let mem_key: MemKey = (stage.tag, key.raw());
        if let Some(entry) = self.mem.lock().expect("engine store").entries.get(&mem_key) {
            if let Ok(value) = Arc::clone(entry).downcast::<T>() {
                stats.hits += 1;
                self.tracer.add(names::INCR_HIT, 1);
                self.tracer.add(names::INCR_MEM_HIT, 1);
                return Ok(value);
            }
        }
        if let Some(disk) = &self.disk {
            if let Some(payload) = disk.load(stage, key) {
                let mut d = Dec::new(&payload);
                match T::decode(&mut d) {
                    Ok(value) if d.is_done() => {
                        let value = Arc::new(value);
                        self.insert_mem(mem_key, Arc::clone(&value) as _);
                        stats.hits += 1;
                        self.tracer.add(names::INCR_HIT, 1);
                        self.tracer.add(names::INCR_DISK_HIT, 1);
                        return Ok(value);
                    }
                    Ok(_) => eprintln!(
                        "silc-incr: warning: stale `{}` cache entry (trailing bytes); recomputing",
                        stage.name
                    ),
                    Err(reason) => eprintln!(
                        "silc-incr: warning: undecodable `{}` cache entry ({reason}); recomputing",
                        stage.name
                    ),
                }
            }
        }
        let value = Arc::new(compute().map_err(|e| format!("{}: {e}", stage.name))?);
        stats.misses += 1;
        self.tracer.add(names::INCR_MISS, 1);
        self.insert_mem(mem_key, Arc::clone(&value) as _);
        if let Some(disk) = &self.disk {
            let mut e = Enc::new();
            value.encode(&mut e);
            let written = disk.store(stage, key, &e.into_bytes());
            self.tracer.add(names::INCR_STORE_BYTES, written);
        }
        Ok(value)
    }

    fn insert_mem(&self, key: MemKey, value: Arc<dyn Any + Send + Sync>) {
        let mut store = self.mem.lock().expect("engine store");
        if store.entries.insert(key, value).is_none() {
            store.order.push_back(key);
        }
        let mut evicted = 0;
        while store.entries.len() > self.mem_entries {
            let Some(oldest) = store.order.pop_front() else {
                break;
            };
            store.entries.remove(&oldest);
            evicted += 1;
        }
        if evicted > 0 {
            self.tracer.add(names::INCR_EVICTIONS, evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn key(n: u64) -> Fp {
        Fp::from_raw(u128::from(n) | 0xfeed << 96)
    }

    #[test]
    fn memoizes_and_counts() {
        let engine = Engine::in_memory();
        let calls = AtomicU64::new(0);
        let mut stats = JobStats::default();
        let compute = || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(99u64)
        };
        let a = engine
            .query(Stage::DRC, key(1), &mut stats, compute)
            .unwrap();
        let b = engine
            .query(Stage::DRC, key(1), &mut stats, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(0u64)
            })
            .unwrap();
        assert_eq!((*a, *b), (99, 99));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(stats, JobStats { hits: 1, misses: 1 });
    }

    #[test]
    fn stages_do_not_collide() {
        let engine = Engine::in_memory();
        let mut stats = JobStats::default();
        engine
            .query(Stage::CIF, key(2), &mut stats, || Ok("cif".to_string()))
            .unwrap();
        let drc = engine
            .query(Stage::DRC, key(2), &mut stats, || Ok("drc".to_string()))
            .unwrap();
        assert_eq!(*drc, "drc");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        // The serve daemon and batch workers hand `&Engine` to many
        // threads at once; the engine must stay `Send + Sync` (the store
        // lock is the only interior mutability, held per-operation).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineConfig>();
    }

    #[test]
    fn errors_carry_the_failing_stage_name_and_are_not_cached() {
        let engine = Engine::in_memory();
        let mut stats = JobStats::default();
        let failed: Result<Arc<u64>, String> =
            engine.query(Stage::SIM, key(3), &mut stats, || Err("boom".into()));
        assert_eq!(failed.unwrap_err(), "sim: boom");
        let ok = engine
            .query(Stage::SIM, key(3), &mut stats, || Ok(5u64))
            .unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn eviction_respects_capacity() {
        let tracer = Tracer::enabled();
        let engine = Engine::new(EngineConfig {
            cache_dir: None,
            mem_entries: 2,
            tracer: tracer.clone(),
        })
        .unwrap();
        let mut stats = JobStats::default();
        for n in 0..5 {
            engine
                .query(Stage::SIM, key(10 + n), &mut stats, || Ok(n))
                .unwrap();
        }
        // Oldest entries were evicted: re-querying them recomputes (and
        // that re-insert evicts once more).
        engine
            .query(Stage::SIM, key(10), &mut stats, || Ok(0u64))
            .unwrap();
        assert_eq!(stats.misses, 6);
        let report = tracer.finish();
        assert_eq!(report.counter(names::INCR_EVICTIONS), Some(4));
        assert_eq!(report.counter(names::INCR_MISS), Some(6));
    }

    #[test]
    fn disk_round_trip_survives_a_new_engine() {
        let dir = std::env::temp_dir().join(format!("silc-incr-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = |tracer: Tracer| EngineConfig {
            cache_dir: Some(dir.clone()),
            mem_entries: 4096,
            tracer,
        };
        let mut stats = JobStats::default();
        {
            let engine = Engine::new(config(Tracer::disabled())).unwrap();
            engine
                .query(Stage::CIF, key(7), &mut stats, || {
                    Ok("persisted".to_string())
                })
                .unwrap();
        }
        let tracer = Tracer::enabled();
        let engine = Engine::new(config(tracer.clone())).unwrap();
        let value = engine
            .query(Stage::CIF, key(7), &mut stats, || {
                Err::<String, _>("should have hit disk".into())
            })
            .unwrap();
        assert_eq!(*value, "persisted");
        let report = tracer.finish();
        assert_eq!(report.counter(names::INCR_DISK_HIT), Some(1));
        assert_eq!(report.counter(names::INCR_HIT), Some(1));
    }
}
