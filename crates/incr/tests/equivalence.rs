//! The incremental engine's contract: caching is *invisible*. Whatever
//! mix of cold computes, memory hits, disk hits and corrupted entries
//! served a compile, its outputs are byte-identical to a from-scratch
//! build — and a fully warm recompile is an order of magnitude faster.

use proptest::prelude::*;
use silc_incr::{compile_sil, CompileOptions, Engine, EngineConfig, EvictPolicy, JobStats};
use silc_trace::Tracer;
use std::path::PathBuf;
use std::time::Instant;

/// The E6 scaling design: an `n x n` array of two-phase shift-register
/// cells (mirrors `silc_bench::e2::shift_array`, inlined to keep this
/// crate out of the bench crate's dependency graph).
fn shift_array(n: usize) -> String {
    format!(
        "cell sr_bit() {{
            box diff (0, 0) (2, 12);
            box poly (-2, 3) (4, 5);
            box poly (-2, 7) (4, 9);
            box metal (4, 0) (7, 12);
         }}
         cell sr_row(n) {{ array sr_bit() at (0, 0) step (12, 0) count n; }}
         cell sr_array(n) {{ array sr_row(n) at (0, 0) step (0, 0) (0, 16) count 1 n; }}
         place sr_array({n}) at (0, 0);"
    )
}

fn options() -> CompileOptions {
    CompileOptions {
        extract: true,
        ..CompileOptions::default()
    }
}

/// Everything observable about a compile, rendered to comparable bytes.
fn observe(
    engine: &Engine,
    source: &str,
    stats: &mut JobStats,
) -> Result<(Option<String>, String, Vec<String>), String> {
    let out = compile_sil(engine, source, &options(), stats)?;
    Ok((
        out.cif.as_deref().cloned(),
        out.drc
            .as_deref()
            .map(ToString::to_string)
            .unwrap_or_default(),
        out.extract
            .as_deref()
            .map(|e| e.signature.clone())
            .unwrap_or_default(),
    ))
}

#[test]
fn warm_recompile_is_an_order_of_magnitude_faster_and_byte_identical() {
    let source = shift_array(32);
    let engine = Engine::in_memory();

    let mut cold_stats = JobStats::default();
    let start = Instant::now();
    let cold = observe(&engine, &source, &mut cold_stats).expect("cold compile");
    let cold_time = start.elapsed();
    assert_eq!(cold_stats.hits, 0);

    // Best-of-three warm timing: the comparison is one-sided (a warm run
    // can only be slowed down by scheduling noise, never sped up).
    let mut warm_time = std::time::Duration::MAX;
    let mut warm = None;
    for _ in 0..3 {
        let mut warm_stats = JobStats::default();
        let start = Instant::now();
        let result = observe(&engine, &source, &mut warm_stats).expect("warm compile");
        warm_time = warm_time.min(start.elapsed());
        assert_eq!(warm_stats.misses, 0, "warm run recomputed a stage");
        warm = Some(result);
    }

    assert_eq!(warm.unwrap(), cold, "warm outputs diverged from cold");
    assert!(
        cold_time >= warm_time * 10,
        "warm recompile not >=10x faster: cold {cold_time:?}, warm {warm_time:?}"
    );
}

#[test]
fn disk_cache_round_trips_across_engines_and_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("silc-incr-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let source = shift_array(4);
    let persistent = |dir: &PathBuf| {
        Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            tracer: Tracer::disabled(),
            ..EngineConfig::default()
        })
        .expect("cache dir")
    };

    let mut stats = JobStats::default();
    let cold = observe(&persistent(&dir), &source, &mut stats).expect("cold");

    // A brand-new engine over the same directory answers purely from disk.
    let mut warm_stats = JobStats::default();
    let warm = observe(&persistent(&dir), &source, &mut warm_stats).expect("warm");
    assert_eq!(warm, cold);
    assert_eq!(warm_stats.misses, 0, "disk cache was not used");

    // Vandalize every entry; the next run must recompute everything,
    // succeed, and still produce identical bytes.
    for entry in std::fs::read_dir(&dir).expect("cache dir listing") {
        let path = entry.expect("entry").path();
        let bytes = std::fs::read(&path).expect("entry bytes");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    }
    let mut recover_stats = JobStats::default();
    let recovered = observe(&persistent(&dir), &source, &mut recover_stats).expect("recovery");
    assert_eq!(recovered, cold);
    assert_eq!(recover_stats.hits, 0, "a corrupted entry was served");

    // The recovery run rewrote the entries: hits are back.
    let mut healed_stats = JobStats::default();
    let healed = observe(&persistent(&dir), &source, &mut healed_stats).expect("healed");
    assert_eq!(healed, cold);
    assert_eq!(healed_stats.misses, 0, "cache did not heal");
}

/// One randomized SIL program: `cells` leaf cells with varying geometry,
/// instantiated (some arrayed) by a top cell.
fn program(cells: &[(i64, i64, i64)], arrayed: bool) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    let mut top = String::from("cell top() {\n");
    for (i, &(w, h, gap)) in cells.iter().enumerate() {
        writeln!(
            src,
            "cell c{i}() {{
                box metal (0, 0) ({w}, {h});
                box poly (0, {y0}) ({w}, {y1});
                box diff ({gap}, -6) ({gx}, -3);
             }}",
            y0 = h + 3,
            y1 = h + 6,
            gx = gap + 3,
        )
        .unwrap();
        let x = i as i64 * 60;
        if arrayed && i == 0 {
            writeln!(top, "array c{i}() at ({x}, 0) step (30, 0) count 2;").unwrap();
        } else {
            writeln!(top, "place c{i}() at ({x}, 0);").unwrap();
        }
    }
    top.push_str("}\nplace top() at (0, 0);");
    src.push_str(&top);
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random program, random single-cell edit: compiling original then
    /// edited against one engine (so the edited compile is served partly
    /// from cache) yields byte-identical outputs to a cold compile of the
    /// edited program.
    #[test]
    fn warm_compile_of_an_edit_matches_cold_compile(
        dims in prop::collection::vec((4i64..20, 4i64..20, 0i64..8), 1..4),
        edit_cell in 0usize..4,
        delta in 1i64..5,
        arrayed in 0u8..2,
    ) {
        let original = program(&dims, arrayed == 1);
        let mut edited_dims = dims.clone();
        let idx = edit_cell % edited_dims.len();
        edited_dims[idx].0 += delta;
        let edited = program(&edited_dims, arrayed == 1);

        let mut cold_stats = JobStats::default();
        let cold = observe(&Engine::in_memory(), &edited, &mut cold_stats);

        let shared = Engine::in_memory();
        let mut prime_stats = JobStats::default();
        let _ = observe(&shared, &original, &mut prime_stats);
        let mut warm_stats = JobStats::default();
        let warm = observe(&shared, &edited, &mut warm_stats);

        prop_assert_eq!(warm, cold);
    }

    /// Recompiling the *same* random program warm must be all hits.
    #[test]
    fn unchanged_recompile_never_recomputes(
        dims in prop::collection::vec((4i64..20, 4i64..20, 0i64..8), 1..4),
    ) {
        let source = program(&dims, false);
        let engine = Engine::in_memory();
        let mut cold_stats = JobStats::default();
        let cold = observe(&engine, &source, &mut cold_stats);
        let mut warm_stats = JobStats::default();
        let warm = observe(&engine, &source, &mut warm_stats);
        prop_assert_eq!(warm, cold);
        prop_assert_eq!(warm_stats.misses, 0);
    }

    /// Sharding and eviction change *when* the cache recomputes, never
    /// what it answers. Replaying one request stream against engines
    /// with different shard counts and starvation-level budgets (down
    /// to one entry, so eviction churns on every insert) must yield
    /// byte-identical outputs at every step; the single-shard FIFO
    /// engine of the pre-farm era is the oracle.
    #[test]
    fn outputs_are_identical_across_shard_counts_and_budgets(
        dims in prop::collection::vec((4i64..20, 4i64..20, 0i64..8), 2..5),
        picks in prop::collection::vec(0usize..8, 4..16),
        mem_entries in 1usize..12,
    ) {
        let programs: Vec<String> = dims
            .iter()
            .map(|d| program(std::slice::from_ref(d), false))
            .collect();
        let replay = |shards: usize, policy: EvictPolicy| -> Result<Vec<_>, TestCaseError> {
            let engine = Engine::new(EngineConfig {
                shards,
                policy,
                mem_entries,
                ..EngineConfig::default()
            })
            .expect("engine config cannot fail without a cache dir");
            picks
                .iter()
                .map(|&p| {
                    let mut stats = JobStats::default();
                    observe(&engine, &programs[p % programs.len()], &mut stats)
                        .map_err(TestCaseError::fail)
                })
                .collect()
        };
        let oracle = replay(1, EvictPolicy::Fifo)?;
        for shards in [1usize, 2, 8] {
            let farm = replay(shards, EvictPolicy::Lru)?;
            prop_assert_eq!(&farm, &oracle, "LRU engine with {} shard(s) diverged", shards);
        }
    }
}
