//! The `Stage::VERIFY` contract: every front-end check answers through
//! one memoized query, both verdicts cache, and a warm re-verify is a
//! pure cache hit — in memory and across engines via the disk tier.

use silc_incr::{
    verify_against, verify_isl, verify_pla, verify_sil, Engine, EngineConfig, JobStats,
};
use silc_trace::Tracer;

const PLA: &str = ".i 3\n.o 2\n.ilb a b c\n.ob x y\n11- 10\n1-1 10\n-11 01\n000 01\n";

const ISL: &str = "machine counter {
  reg a[4];
  state s0 {
    if a == 3 { halt; } else { a := a + 1; goto s0; }
  }
}";

/// One prelude inverter with root-level ports naming the rails, so
/// extraction (and pnr's extract-back) recover `vdd`/`gnd` by name.
const SIL: &str = "place std_inv() at (0, 0);
port inp poly (-4, 9);
port out metal (12, 15);
port gnd diff (2, 0);
port vdd diff (2, 30);";

#[test]
fn pla_verify_is_equivalent_and_warm_verify_is_a_pure_hit() {
    let engine = Engine::in_memory();
    let mut cold = JobStats::default();
    let snap = verify_pla(&engine, PLA, &mut cold).expect("verifies");
    assert!(snap.equivalent, "{:?}", snap.mismatches);
    assert_eq!(snap.check, "pla");
    assert!(cold.misses >= 1);

    let mut warm = JobStats::default();
    let again = verify_pla(&engine, PLA, &mut warm).expect("verifies");
    assert_eq!(*again, *snap);
    assert_eq!(warm.misses, 0, "warm verify recomputed");
    assert_eq!(warm.hits, 1);
}

#[test]
fn isl_verify_confirms_the_synthesized_control_store() {
    let engine = Engine::in_memory();
    let mut stats = JobStats::default();
    let snap = verify_isl(&engine, ISL, &mut stats).expect("verifies");
    assert!(snap.equivalent, "{:?}", snap.mismatches);
    assert_eq!(snap.check, "isl");
    assert!(snap.outputs >= 1);

    // A formatting-only edit hits the cache: the key is the machine.
    let spaced = ISL.replace("  ", "    ");
    let mut warm = JobStats::default();
    let again = verify_isl(&engine, &spaced, &mut warm).expect("verifies");
    assert_eq!(*again, *snap);
    assert_eq!(warm.misses, 0, "formatting edit missed the cache");
}

#[test]
fn sil_verify_proves_the_routed_layout_functionally_equivalent() {
    let engine = Engine::in_memory();
    let mut stats = JobStats::default();
    let snap = verify_sil(&engine, SIL, "nmos", &mut stats).expect("verifies");
    assert!(snap.equivalent, "{:?}", snap.mismatches);
    assert_eq!(snap.check, "sil");

    let mut warm = JobStats::default();
    let again = verify_sil(&engine, SIL, "nmos", &mut warm).expect("verifies");
    assert_eq!(*again, *snap);
    assert_eq!(warm.misses, 0, "warm sil verify recomputed");
}

#[test]
fn against_catches_a_mutated_table_without_erroring() {
    let engine = Engine::in_memory();
    let mut stats = JobStats::default();
    let clean = verify_against(&engine, PLA, PLA, &mut stats).expect("verifies");
    assert!(clean.equivalent, "{:?}", clean.mismatches);
    assert_eq!(clean.check, "against");

    // Flip one output bit: the verdict is NOT equivalent, but the query
    // succeeds — inequivalence is an answer, not an error.
    let mutated = PLA.replace("-11 01", "-11 11");
    let caught = verify_against(&engine, &mutated, PLA, &mut stats).expect("verifies");
    assert!(!caught.equivalent);
    assert!(
        caught.mismatches.iter().any(|m| m.contains('x')),
        "mismatch names the output: {:?}",
        caught.mismatches
    );

    // Both verdicts are cached — the failing one included.
    let mut warm = JobStats::default();
    let again = verify_against(&engine, &mutated, PLA, &mut warm).expect("verifies");
    assert_eq!(*again, *caught);
    assert_eq!(warm.misses, 0, "failing verdict was not cached");
}

#[test]
fn verify_snapshots_round_trip_through_the_disk_cache() {
    let dir = std::env::temp_dir().join(format!("silc-verify-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let persistent = || {
        Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            tracer: Tracer::disabled(),
            ..EngineConfig::default()
        })
        .expect("cache dir")
    };

    let mut cold = JobStats::default();
    let snap = verify_pla(&persistent(), PLA, &mut cold).expect("verifies");

    // A brand-new engine over the same directory answers from disk,
    // proving the snapshot's Persist codec round-trips.
    let mut warm = JobStats::default();
    let again = verify_pla(&persistent(), PLA, &mut warm).expect("verifies");
    assert_eq!(*again, *snap);
    assert_eq!(warm.misses, 0, "disk tier was not used");

    let _ = std::fs::remove_dir_all(&dir);
}
