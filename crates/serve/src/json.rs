//! A small JSON value type with a parser and writer.
//!
//! The serve protocol needs exactly one wire format and the workspace
//! vendors no serde, so this module hand-rolls the subset the protocol
//! uses: null, booleans, integers, strings, arrays and objects. Objects
//! preserve insertion order (a `Vec` of pairs, not a map) so responses
//! serialize deterministically. Floats are rejected on parse — nothing
//! in the protocol is fractional, and refusing them keeps round-trips
//! exact.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are integers only (`i128` covers every
/// `u64`/`i64` the pipeline produces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer; floats are rejected at parse time.
    Int(i128),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order. Duplicate keys are kept as-is;
    /// [`Json::get`] answers with the first.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer as a `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to compact JSON (no whitespace), object members in
/// insertion order — so `value.to_string()` is the wire form.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable message naming the first offence (position included
/// where it helps): unexpected characters, unterminated strings, bad
/// escapes, floats, or trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the protocol is integer-only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"));
                }
                Some(_) => {
                    // Bulk-copy the maximal run of plain bytes. The
                    // delimiters (`"`, `\`, controls) are all ASCII and
                    // UTF-8 continuation bytes are >= 0x80, so a
                    // byte-wise scan can only stop on a character
                    // boundary and the run is valid UTF-8 as a whole
                    // (the input is a &str by construction). One
                    // validation per run, not one per character, keeps
                    // large embedded sources (SIL designs) linear.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a &str"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        // Surrogate pairs encode astral-plane characters.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| "bad surrogate pair".into());
                }
            }
            return Err("lone surrogate in \\u escape".into());
        }
        char::from_u32(first).ok_or_else(|| format!("bad \\u escape {first:04x}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(digits).map_err(|_| "bad \\u escape")?;
        let value = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(value)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_subset() {
        let text = r#"{"op":"compile","id":7,"ok":true,"nested":[1,-2,null],"flag":false}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(value.get("id"), Some(&Json::Int(7)));
        assert_eq!(value.get("op").and_then(Json::as_str), Some("compile"));
        assert_eq!(value.get("flag").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1} ünï😀";
        let json = Json::Str(original.into()).to_string();
        assert_eq!(parse(&json).unwrap(), Json::Str(original.into()));
        // Escaped forms parse too.
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("Aé😀".into())
        );
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").unwrap_err().contains("integer-only"));
        assert!(parse("1e3").unwrap_err().contains("integer-only"));
        assert!(parse("{\"a\":1} x").unwrap_err().contains("trailing"));
        assert!(parse("{\"a\"").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn first_duplicate_key_wins_on_lookup() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Json::Int(1)));
    }

    #[test]
    fn big_integers_survive() {
        let max = u64::MAX as i128;
        let text = format!("[{max},-9223372036854775808]");
        let v = parse(&text).unwrap();
        assert_eq!(v.to_string(), text);
    }
}
