//! The compile server: a threaded TCP accept loop feeding a compile
//! *farm* — per-worker dequeues with work stealing — over ONE shared
//! incremental [`Engine`] whose memory tier is lock-striped into shards.
//!
//! ```text
//!            ┌── connection thread ──┐  dispatch   ┌─ worker 0 ─┐
//! accept ──▶ │ read line → parse →   ├────────────▶│ lanes: I|B │──▶ engine
//!            │ wait (recv_timeout) ◀─┤  (affinity  └─────┬──────┘   (shared,
//!            └───────────────────────┘   routing)  steal │          sharded)
//!                                                  ┌─────▼──────┐
//!                                                  │ worker N   │
//!                                                  └────────────┘
//! ```
//!
//! Scheduling properties, each with a dedicated mechanism:
//!
//! * **Cache affinity** — each worker keeps a ring of the affinity
//!   hashes it recently completed; the dispatcher routes a request to
//!   the worker warmest for its source (bounded by a depth slack so a
//!   popular source cannot pile onto one worker unboundedly).
//! * **Work stealing** — a worker with empty lanes steals from the
//!   *back* of another worker's lanes (the cold end, preserving the
//!   victim's warm front), so affinity routing never strands work.
//! * **Priority lanes** — every worker has an interactive and a batch
//!   lane (`"priority"` request field, interactive by default);
//!   interactive jobs always dequeue first, so bulk traffic cannot
//!   push editor round-trips past their deadlines.
//! * **Per-client fairness** — a worker avoids serving the same
//!   connection twice in a row when another client's job is waiting
//!   within a small scan window, so one chatty connection cannot
//!   starve its neighbours.
//!
//! Robustness properties (unchanged contract from the single-queue
//! server):
//!
//! * **Backpressure** — total queued jobs are bounded by
//!   `queue_capacity`; past it requests answer `overloaded` immediately
//!   ([`crate::protocol::kind::OVERLOADED`]).
//! * **Deadlines** — the connection thread waits for the worker's reply
//!   with `recv_timeout`; past the deadline the client gets a `timeout`
//!   response and the connection moves on. Workers additionally drop
//!   jobs that are already expired at dequeue.
//! * **Isolation** — a malformed line gets a `bad_request` reply and the
//!   connection survives; a panicking pipeline is caught per-job
//!   (`catch_unwind`) and answered as an `error`.
//! * **Idle reaping** — connections that complete no request within the
//!   idle window are closed.
//! * **Graceful shutdown** — a `shutdown` request or SIGINT stops the
//!   accept loop; workers keep draining (their own lanes *and* steals)
//!   until no job remains, then every thread joins and `run` returns
//!   `Ok(())`.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use silc_drc::RuleSet;
use silc_exec::SimEngine;
use silc_incr::{
    compile_sil, default_parallelism, drc_report, elaborate, flat_regions, pnr_sil, sim_results,
    verify_against, verify_isl, verify_pla, verify_sil, CompileOptions, Engine, EngineConfig,
    EvictPolicy, JobStats,
};
use silc_trace::{names, Tracer};

use crate::json::Json;
use crate::protocol::{
    err_response, kind, ok_response, parse_request, Envelope, Priority, Request,
};

/// How often blocked loops wake to check the stop flag, in milliseconds.
const POLL_MS: u64 = 25;
/// Affinity hashes remembered per worker.
const RECENT_RING: usize = 32;
/// How many queued jobs the fairness pop scans for another client.
const FAIRNESS_SCAN: usize = 4;
/// Affinity routing yields to load balance when the warm worker is this
/// many jobs deeper than the shallowest one.
const AFFINITY_DEPTH_SLACK: usize = 4;

/// Server tuning knobs. `Default` is production-shaped; tests shrink the
/// queue and deadlines to force each failure mode deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads computing pipeline requests.
    pub jobs: usize,
    /// Bound on total queued (not yet running) jobs across all workers;
    /// past it requests answer `overloaded`.
    pub queue_capacity: usize,
    /// Default per-request deadline when the request names none.
    pub default_deadline_ms: u64,
    /// Connections with no completed request for this long are closed.
    pub idle_timeout_ms: u64,
    /// Persistent cache directory for the shared engine.
    pub cache_dir: Option<PathBuf>,
    /// Lock-stripe count for the engine's memory tier (`--shards`).
    pub shards: usize,
    /// Total memory-tier entry budget for the engine.
    pub mem_entries: usize,
    /// Memory-tier eviction policy ([`EvictPolicy::Fifo`] is the
    /// single-lock-era baseline, kept for the `e9` load-test ablation).
    pub policy: EvictPolicy,
    /// Trace destination; `serve.*` counters and pipeline spans land
    /// here.
    pub tracer: Tracer,
    /// Accept the test-only `sleep` op. Never set by the CLI; protocol
    /// tests use it to hold workers for a known duration.
    pub enable_test_ops: bool,
    /// Engine servicing `sim` requests that name none themselves.
    pub default_engine: SimEngine,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let jobs = default_parallelism();
        let engine = EngineConfig::default();
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs,
            queue_capacity: jobs * 4,
            default_deadline_ms: 30_000,
            idle_timeout_ms: 60_000,
            cache_dir: None,
            shards: engine.shards,
            mem_entries: engine.mem_entries,
            policy: engine.policy,
            tracer: Tracer::disabled(),
            enable_test_ops: false,
            default_engine: SimEngine::default(),
        }
    }
}

/// Monotonic server counters, readable at any time via the `stats` op.
#[derive(Debug, Default)]
struct ServeStats {
    accepted: AtomicU64,
    requests: AtomicU64,
    timeouts: AtomicU64,
    rejected: AtomicU64,
    bad_requests: AtomicU64,
    busy_workers: AtomicU64,
    stolen: AtomicU64,
    affinity_hits: AtomicU64,
    lane_interactive: AtomicU64,
    lane_batch: AtomicU64,
    sim_compiled: AtomicU64,
    sim_interp: AtomicU64,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    engine: Engine,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    stats: ServeStats,
}

impl Shared {
    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || sigint_seen()
    }
}

/// One enqueued compute request. The reply channel carries the fully
/// rendered response line; if the waiter gave up (deadline), the send
/// fails silently and the result is discarded.
struct Job {
    envelope: Envelope,
    deadline: Instant,
    reply: SyncSender<String>,
    /// Originating connection, for per-client fairness.
    conn: u64,
    /// Cache-affinity hash of the request (0 = none).
    affinity: u64,
}

/// One worker's scheduling state: two job lanes behind a mutex (with a
/// condvar for wakeups), a queued-depth counter, and a lock-free ring
/// of recently completed affinity hashes the dispatcher reads to find
/// the warmest worker.
struct WorkerHub {
    lanes: Mutex<Lanes>,
    wake: Condvar,
    depth: AtomicUsize,
    recent: Vec<AtomicU64>,
    cursor: AtomicUsize,
}

impl WorkerHub {
    fn new() -> WorkerHub {
        WorkerHub {
            lanes: Mutex::new(Lanes::default()),
            wake: Condvar::new(),
            depth: AtomicUsize::new(0),
            recent: (0..RECENT_RING).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }
}

/// A worker's two job lanes. Interactive always dequeues before batch.
#[derive(Default)]
struct Lanes {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
}

impl Lanes {
    fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }

    /// Owner pop: interactive first, avoiding `last_conn` when another
    /// client's job waits within the fairness scan window.
    fn pop(&mut self, last_conn: Option<u64>) -> Option<Job> {
        Self::pop_lane(&mut self.interactive, last_conn)
            .or_else(|| Self::pop_lane(&mut self.batch, last_conn))
    }

    fn pop_lane(lane: &mut VecDeque<Job>, last_conn: Option<u64>) -> Option<Job> {
        if let Some(last) = last_conn {
            let scan = lane.len().min(FAIRNESS_SCAN);
            if let Some(pos) = lane.iter().take(scan).position(|j| j.conn != last) {
                return lane.remove(pos);
            }
        }
        lane.pop_front()
    }

    /// Thief pop: from the back (the cold end), so the victim keeps the
    /// jobs its cache is warmest for. Interactive still outranks batch.
    fn steal(&mut self) -> Option<Job> {
        self.interactive
            .pop_back()
            .or_else(|| self.batch.pop_back())
    }
}

/// What [`Farm::dispatch`] did with a job.
struct Dispatched {
    /// Total queued jobs after the enqueue (for the depth gauge).
    depth: u64,
    /// The job was routed by affinity, not load.
    affinity_hit: bool,
    /// Index of the chosen worker.
    #[cfg_attr(not(test), allow(dead_code))]
    worker: usize,
}

/// The scheduler: per-worker hubs plus the global queued-job count that
/// implements backpressure.
struct Farm {
    workers: Vec<WorkerHub>,
    queued: AtomicUsize,
    capacity: usize,
}

impl Farm {
    fn new(workers: usize, capacity: usize) -> Farm {
        Farm {
            workers: (0..workers.max(1)).map(|_| WorkerHub::new()).collect(),
            queued: AtomicUsize::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Routes and enqueues one job: the worker with the most recent
    /// completions of the same affinity hash wins (within a depth slack
    /// of the shallowest worker); otherwise the shallowest worker.
    /// Rejects the job when the global queue bound is reached.
    fn dispatch(&self, job: Job) -> Result<Dispatched, Box<Job>> {
        if self.queued.load(Ordering::SeqCst) >= self.capacity {
            return Err(Box::new(job));
        }
        let mut warm = None; // (worker, score)
        if job.affinity != 0 && self.workers.len() > 1 {
            for (i, hub) in self.workers.iter().enumerate() {
                let score = hub
                    .recent
                    .iter()
                    .filter(|slot| slot.load(Ordering::Relaxed) == job.affinity)
                    .count();
                if score > 0 && warm.is_none_or(|(_, best)| score > best) {
                    warm = Some((i, score));
                }
            }
        }
        let shallowest = self
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, hub)| hub.depth.load(Ordering::SeqCst))
            .map_or(0, |(i, _)| i);
        let min_depth = self.workers[shallowest].depth.load(Ordering::SeqCst);
        let (target, affinity_hit) = match warm {
            Some((i, _))
                if self.workers[i].depth.load(Ordering::SeqCst)
                    <= min_depth + AFFINITY_DEPTH_SLACK =>
            {
                (i, true)
            }
            _ => (shallowest, false),
        };
        let hub = &self.workers[target];
        // Count before pushing so depth/queued never read below zero.
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        hub.depth.fetch_add(1, Ordering::SeqCst);
        {
            let mut lanes = hub.lanes.lock().expect("worker lanes");
            match job.envelope.priority {
                Priority::Interactive => lanes.interactive.push_back(job),
                Priority::Batch => lanes.batch.push_back(job),
            }
        }
        hub.wake.notify_one();
        // Poke a neighbour too: if the warm worker is mid-compute, an
        // idle one can steal promptly instead of on its poll tick.
        if self.workers.len() > 1 {
            self.workers[(target + 1) % self.workers.len()]
                .wake
                .notify_one();
        }
        Ok(Dispatched {
            depth,
            affinity_hit,
            worker: target,
        })
    }

    /// Worker `me` claims its next job: own lanes first (fairness-aware),
    /// then a steal sweep over the other workers. Returns the job and
    /// whether it was stolen.
    fn take(&self, me: usize, last_conn: Option<u64>) -> Option<(Job, bool)> {
        let own = self.workers[me]
            .lanes
            .lock()
            .expect("worker lanes")
            .pop(last_conn);
        if let Some(job) = own {
            self.workers[me].depth.fetch_sub(1, Ordering::SeqCst);
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some((job, false));
        }
        for offset in 1..self.workers.len() {
            let victim = &self.workers[(me + offset) % self.workers.len()];
            // try_lock: never block on a hub being serviced; the poll
            // tick retries soon enough.
            let stolen = victim.lanes.try_lock().ok().and_then(|mut l| l.steal());
            if let Some(job) = stolen {
                victim.depth.fetch_sub(1, Ordering::SeqCst);
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some((job, true));
            }
        }
        None
    }

    /// Blocks worker `me` until new work is signalled or the poll tick
    /// elapses. Re-checks emptiness under the lock, so a dispatch
    /// racing this call cannot be missed.
    fn park(&self, me: usize) {
        let hub = &self.workers[me];
        let lanes = hub.lanes.lock().expect("worker lanes");
        if lanes.is_empty() {
            let _ = hub
                .wake
                .wait_timeout(lanes, Duration::from_millis(POLL_MS * 2))
                .expect("worker lanes");
        }
    }

    /// Records a completed affinity hash into worker `me`'s ring.
    fn record_recent(&self, me: usize, affinity: u64) {
        if affinity == 0 {
            return;
        }
        let hub = &self.workers[me];
        let slot = hub.cursor.fetch_add(1, Ordering::Relaxed) % hub.recent.len();
        hub.recent[slot].store(affinity, Ordering::Relaxed);
    }
}

/// Requests shutdown from outside [`Server::run`] — tests use this where
/// a client would send `{"op":"shutdown"}` and a terminal sends SIGINT.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Begins a graceful shutdown: stop accepting, drain, join, return.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound compile server. [`bind`](Server::bind) then
/// [`run`](Server::run); `run` blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Binds the listen socket and opens the shared engine (creating
    /// the cache directory when configured).
    ///
    /// # Errors
    ///
    /// Bind or cache-directory failures, rendered to strings.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
        let engine = Engine::new(EngineConfig {
            cache_dir: config.cache_dir.clone(),
            tracer: config.tracer.clone(),
            shards: config.shards.max(1),
            mem_entries: config.mem_entries.max(1),
            policy: config.policy,
            ..EngineConfig::default()
        })?;
        Ok(Server {
            listener,
            shared: Shared {
                engine,
                config,
                stop: Arc::new(AtomicBool::new(false)),
                stats: ServeStats::default(),
            },
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// The socket's own error, rendered to a string.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.shared.stop),
        }
    }

    /// Serves until shutdown (a `shutdown` request, a
    /// [`ShutdownHandle`], or SIGINT when the handler is installed),
    /// then drains in-flight jobs and joins every thread.
    ///
    /// # Errors
    ///
    /// Only setup failures (making the listener non-blocking); per-
    /// connection and per-request failures are answered on the wire,
    /// never returned.
    pub fn run(self) -> Result<(), String> {
        let Server { listener, shared } = self;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll the listener: {e}"))?;
        let farm = Farm::new(
            shared.config.jobs.max(1),
            shared.config.queue_capacity.max(1),
        );
        let shared = &shared;
        let farm = &farm;
        std::thread::scope(|scope| {
            for me in 0..farm.workers.len() {
                scope.spawn(move || worker_loop(shared, farm, me));
            }
            while !shared.should_stop() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn = shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
                        shared.config.tracer.add(names::SERVE_ACCEPT, 1);
                        scope.spawn(move || serve_connection(shared, farm, stream, conn));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                    Err(e) => {
                        // Transient accept failures (e.g. EMFILE) are
                        // logged, not fatal: existing clients keep
                        // their service.
                        eprintln!("silc serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                }
            }
            // Leaving the scope joins workers (which drain every lane,
            // stealing included) and connection threads (which finish
            // their in-flight request, then notice the stop flag on the
            // next read tick).
        });
        Ok(())
    }
}

/// One worker: claim (own lanes, then steal), run, record affinity,
/// repeat — until shutdown *and* no queued job remains anywhere, which
/// gives drain-then-exit for free.
fn worker_loop(shared: &Shared, farm: &Farm, me: usize) {
    let mut last_conn = None;
    loop {
        match farm.take(me, last_conn) {
            Some((job, stolen)) => {
                if stolen {
                    shared.stats.stolen.fetch_add(1, Ordering::SeqCst);
                    shared.config.tracer.add(names::SERVE_STEAL, 1);
                }
                if Instant::now() >= job.deadline {
                    // The waiter has already answered `timeout`; don't
                    // burn a worker on a result nobody will read.
                    continue;
                }
                shared.stats.busy_workers.fetch_add(1, Ordering::SeqCst);
                let response = run_job(shared, &job);
                shared.stats.busy_workers.fetch_sub(1, Ordering::SeqCst);
                // Record warmth BEFORE replying: the client's next
                // request may race the ring update otherwise.
                farm.record_recent(me, job.affinity);
                // Fails iff the waiter timed out meanwhile; discard.
                let _ = job.reply.send(response);
                last_conn = Some(job.conn);
            }
            None => {
                if shared.should_stop() && farm.queued.load(Ordering::SeqCst) == 0 {
                    return;
                }
                farm.park(me);
            }
        }
    }
}

/// Executes one job with panic isolation and renders the response line.
fn run_job(shared: &Shared, job: &Job) -> String {
    let id = &job.envelope.id;
    let op = job.envelope.request.op();
    match catch_unwind(AssertUnwindSafe(|| {
        execute(shared, &job.envelope.request, job.deadline)
    })) {
        Ok(Ok(fields)) => ok_response(id, op, fields),
        Ok(Err(detail)) => err_response(id, kind::ERROR, &detail),
        Err(_) => err_response(id, kind::ERROR, &format!("internal panic in `{op}`")),
    }
}

/// Runs one compute op against the shared engine. Field order is fixed
/// so responses are byte-stable across runs.
fn execute(
    shared: &Shared,
    request: &Request,
    deadline: Instant,
) -> Result<Vec<(String, Json)>, String> {
    let engine = &shared.engine;
    let mut stats = JobStats::default();
    let mut fields: Vec<(String, Json)> = Vec::new();
    match request {
        Request::Compile {
            source,
            no_drc,
            extract,
        } => {
            let options = CompileOptions {
                check_drc: !no_drc,
                rules: RuleSet::mead_conway_nmos(),
                emit_cif: true,
                extract: *extract,
            };
            let out = compile_sil(engine, source, &options, &mut stats)?;
            if let Some(report) = &out.drc {
                // Mirror the CLI: violations fail the request and
                // withhold CIF (`no_drc` skips the check entirely).
                if !report.is_clean() {
                    return Err(format!("drc: {} violation(s)", report.violations.len()));
                }
            }
            fields.push(("cells".into(), Json::Int(out.design.library.len() as i128)));
            fields.push((
                "flat_elements".into(),
                Json::Int(out.flat.flat_elements as i128),
            ));
            let (w, h) = out
                .flat
                .bbox
                .map_or((0, 0), |b| (b.width() as i128, b.height() as i128));
            fields.push(("die".into(), Json::Arr(vec![Json::Int(w), Json::Int(h)])));
            if let Some(ex) = &out.extract {
                fields.push((
                    "extract".into(),
                    Json::Obj(vec![
                        ("transistors".into(), Json::Int(ex.transistors as i128)),
                        ("nets".into(), Json::Int(ex.nets as i128)),
                    ]),
                ));
            }
            let cif = out.cif.as_ref().map_or("", |c| c.as_str());
            fields.push(("cif".into(), Json::Str(cif.to_string())));
        }
        Request::Sim {
            source,
            cycles,
            engine: requested,
        } => {
            let sim_engine = requested.unwrap_or(shared.config.default_engine);
            let counter = match sim_engine {
                SimEngine::Compiled => &shared.stats.sim_compiled,
                SimEngine::Interp => &shared.stats.sim_interp,
            };
            counter.fetch_add(1, Ordering::SeqCst);
            let machine = silc_rtl::parse(source).map_err(|e| format!("isl.parse: {e}"))?;
            let sim = sim_results(engine, &machine, *cycles, sim_engine, &mut stats)?;
            fields.push(("machine".into(), Json::Str(machine.name.clone())));
            fields.push(("engine".into(), Json::Str(sim_engine.to_string())));
            fields.push(("cycles".into(), Json::Int(sim.cycles as i128)));
            fields.push(("halted".into(), Json::Bool(sim.halted)));
            fields.push(("state".into(), Json::Str(sim.state.clone())));
            let render = |pairs: &[(String, u64)]| {
                Json::Obj(
                    pairs
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::Int(*value as i128)))
                        .collect(),
                )
            };
            fields.push(("regs".into(), render(&sim.regs)));
            fields.push(("outputs".into(), render(&sim.outputs)));
        }
        Request::Drc { source } => {
            let design = elaborate(engine, source, &mut stats)?;
            let flat = flat_regions(engine, &design, &mut stats)?;
            let report = drc_report(engine, &flat, &RuleSet::mead_conway_nmos(), &mut stats)?;
            fields.push((
                "violations".into(),
                Json::Int(report.violations.len() as i128),
            ));
            fields.push(("clean".into(), Json::Bool(report.is_clean())));
            fields.push(("report".into(), Json::Str(report.to_string())));
        }
        Request::Pnr { source, stack } => {
            let stack = stack.as_deref().unwrap_or(silc_pnr::RouteStack::KNOWN[0]);
            let out = pnr_sil(engine, source, stack, true, &mut stats)?;
            fields.push(("cells".into(), Json::Int(out.cells as i128)));
            fields.push(("nets".into(), Json::Int(out.nets as i128)));
            fields.push(("routed".into(), Json::Int(out.routed as i128)));
            fields.push(("wirelength".into(), Json::Int(out.wirelength as i128)));
            fields.push(("vias".into(), Json::Int(out.vias as i128)));
            fields.push(("rounds".into(), Json::Int(out.rounds as i128)));
            fields.push(("lvs_ok".into(), Json::Bool(out.lvs_ok)));
            fields.push(("cif".into(), Json::Str(out.cif.clone())));
        }
        Request::Verify {
            source,
            lang,
            against,
            stack,
        } => {
            let snap = match (against, lang.as_str()) {
                (Some(spec), "pla") => verify_against(engine, source, spec, &mut stats)?,
                (Some(_), other) => {
                    return Err(format!(
                        "verify: `against` checks one PLA table against another, not `{other}`"
                    ))
                }
                (None, "pla") => verify_pla(engine, source, &mut stats)?,
                (None, "isl") => verify_isl(engine, source, &mut stats)?,
                (None, "sil") => {
                    let stack = stack.as_deref().unwrap_or(silc_pnr::RouteStack::KNOWN[0]);
                    verify_sil(engine, source, stack, &mut stats)?
                }
                (None, other) => return Err(format!("verify: unsupported lang `{other}`")),
            };
            fields.push(("check".into(), Json::Str(snap.check.clone())));
            fields.push(("equivalent".into(), Json::Bool(snap.equivalent)));
            fields.push(("outputs".into(), Json::Int(snap.outputs as i128)));
            fields.push((
                "strash_merged".into(),
                Json::Int(snap.strash_merged as i128),
            ));
            fields.push(("sim_refuted".into(), Json::Int(snap.sim_refuted as i128)));
            fields.push((
                "exact_decided".into(),
                Json::Int(snap.exact_decided as i128),
            ));
            fields.push((
                "mismatches".into(),
                Json::Arr(
                    snap.mismatches
                        .iter()
                        .map(|m| Json::Str(m.clone()))
                        .collect(),
                ),
            ));
        }
        Request::Sleep { ms } => {
            // Sleep in short slices so shutdown drains fast and an
            // expired deadline frees the worker early.
            let end = Instant::now() + Duration::from_millis(*ms);
            loop {
                let now = Instant::now();
                if now >= end {
                    break;
                }
                if shared.should_stop() {
                    break;
                }
                if now >= deadline {
                    return Err(format!("slept past the {ms}ms deadline"));
                }
                std::thread::sleep((end - now).min(Duration::from_millis(5)));
            }
            fields.push(("slept_ms".into(), Json::Int(*ms as i128)));
        }
        Request::Stats | Request::Shutdown => {
            unreachable!("control ops are answered on the connection thread")
        }
    }
    fields.push(("cache_hits".into(), Json::Int(stats.hits as i128)));
    fields.push(("cache_misses".into(), Json::Int(stats.misses as i128)));
    Ok(fields)
}

/// Services one client: read a line, answer it, repeat. Reads tick every
/// [`POLL_MS`]·4 so the loop can notice shutdown and idle expiry without
/// a dedicated reaper thread.
fn serve_connection(shared: &Shared, farm: &Farm, stream: TcpStream, conn: u64) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    if stream
        .set_read_timeout(Some(Duration::from_millis(POLL_MS * 4)))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    let idle_budget = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let mut last_done = Instant::now();
    let mut line = String::new();
    loop {
        if shared.should_stop() {
            return;
        }
        // `read_line` keeps whatever arrived before a timeout in `line`,
        // so a request split across packets accumulates across ticks.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let keep_open = answer_line(shared, farm, &mut writer, line.trim(), conn);
                line.clear();
                last_done = Instant::now();
                if !keep_open {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if last_done.elapsed() > idle_budget {
                    return; // idle reap
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses and answers one request line. Returns `false` when the
/// connection should close (after a `shutdown` acknowledgement).
fn answer_line(
    shared: &Shared,
    farm: &Farm,
    writer: &mut TcpStream,
    line: &str,
    conn: u64,
) -> bool {
    if line.is_empty() {
        return true; // blank keep-alive lines are not requests
    }
    shared.stats.requests.fetch_add(1, Ordering::SeqCst);
    shared.config.tracer.add(names::SERVE_REQUESTS, 1);
    let envelope = match parse_request(line, shared.config.enable_test_ops) {
        Ok(envelope) => envelope,
        Err(detail) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::SeqCst);
            shared.config.tracer.add(names::SERVE_BAD_REQUEST, 1);
            return respond(writer, &err_response(&None, kind::BAD_REQUEST, &detail));
        }
    };
    match &envelope.request {
        Request::Stats => respond(
            writer,
            &ok_response(&envelope.id, "stats", stats_fields(shared, farm)),
        ),
        Request::Shutdown => {
            // Acknowledge first so the requester sees the reply even
            // though everything is about to wind down.
            let _ = respond(writer, &ok_response(&envelope.id, "shutdown", Vec::new()));
            shared.stop.store(true, Ordering::SeqCst);
            false
        }
        _ => {
            dispatch_compute(shared, farm, writer, envelope, conn);
            true
        }
    }
}

/// Enqueues a compute request and waits for its reply or deadline.
fn dispatch_compute(
    shared: &Shared,
    farm: &Farm,
    writer: &mut TcpStream,
    envelope: Envelope,
    conn: u64,
) {
    let budget = Duration::from_millis(
        envelope
            .deadline_ms
            .unwrap_or(shared.config.default_deadline_ms)
            .max(1),
    );
    let deadline = Instant::now() + budget;
    let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(1);
    let id = envelope.id.clone();
    let priority = envelope.priority;
    let affinity = envelope.request.affinity();
    let job = Job {
        envelope,
        deadline,
        reply: reply_tx,
        conn,
        affinity,
    };
    match farm.dispatch(job) {
        Ok(routed) => {
            shared
                .config
                .tracer
                .gauge_max(names::SERVE_QUEUE_DEPTH, routed.depth);
            if routed.affinity_hit {
                shared.stats.affinity_hits.fetch_add(1, Ordering::SeqCst);
                shared.config.tracer.add(names::SERVE_AFFINITY_HIT, 1);
            }
            match priority {
                Priority::Interactive => {
                    shared.stats.lane_interactive.fetch_add(1, Ordering::SeqCst);
                    shared.config.tracer.add(names::SERVE_LANE_INTERACTIVE, 1);
                }
                Priority::Batch => {
                    shared.stats.lane_batch.fetch_add(1, Ordering::SeqCst);
                    shared.config.tracer.add(names::SERVE_LANE_BATCH, 1);
                }
            }
            match reply_rx.recv_timeout(budget) {
                Ok(response) => {
                    respond(writer, &response);
                }
                // `Disconnected` means a worker discarded the expired
                // job before computing — the same client-visible fact.
                Err(_) => {
                    shared.stats.timeouts.fetch_add(1, Ordering::SeqCst);
                    shared.config.tracer.add(names::SERVE_TIMEOUT, 1);
                    let detail = format!("no result within {}ms", budget.as_millis());
                    respond(writer, &err_response(&id, kind::TIMEOUT, &detail));
                }
            }
        }
        Err(_job) => {
            shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
            shared.config.tracer.add(names::SERVE_REJECTED, 1);
            respond(
                writer,
                &err_response(&id, kind::OVERLOADED, "compute queue is full; retry later"),
            );
        }
    }
}

/// The `stats` response body, in a fixed field order.
fn stats_fields(shared: &Shared, farm: &Farm) -> Vec<(String, Json)> {
    let count = |a: &AtomicU64| Json::Int(a.load(Ordering::SeqCst) as i128);
    let s = &shared.stats;
    let (mem_entries, mem_pinned) = shared.engine.mem_occupancy();
    vec![
        ("accepted".into(), count(&s.accepted)),
        ("requests".into(), count(&s.requests)),
        ("timeouts".into(), count(&s.timeouts)),
        ("rejected".into(), count(&s.rejected)),
        ("bad_requests".into(), count(&s.bad_requests)),
        ("busy_workers".into(), count(&s.busy_workers)),
        (
            "queue_depth".into(),
            Json::Int(farm.queued.load(Ordering::SeqCst) as i128),
        ),
        ("stolen".into(), count(&s.stolen)),
        ("affinity_hits".into(), count(&s.affinity_hits)),
        ("interactive".into(), count(&s.lane_interactive)),
        ("batch".into(), count(&s.lane_batch)),
        ("sim.compiled".into(), count(&s.sim_compiled)),
        ("sim.interp".into(), count(&s.sim_interp)),
        (
            "workers".into(),
            Json::Int(shared.config.jobs.max(1) as i128),
        ),
        (
            "shards".into(),
            Json::Int(shared.engine.shard_count() as i128),
        ),
        (
            "queue_capacity".into(),
            Json::Int(shared.config.queue_capacity.max(1) as i128),
        ),
        ("mem_entries".into(), Json::Int(mem_entries as i128)),
        ("mem_pinned".into(), Json::Int(mem_pinned as i128)),
        (
            "persistent_cache".into(),
            Json::Bool(shared.engine.is_persistent()),
        ),
    ]
}

/// Writes one response line; `false` (drop the connection) on I/O error.
fn respond(writer: &mut TcpStream, response: &str) -> bool {
    let mut payload = response.to_string();
    payload.push('\n');
    writer.write_all(payload.as_bytes()).is_ok() && writer.flush().is_ok()
}

// ---------------------------------------------------------------------
// SIGINT: a self-installed handler setting one global flag, polled by
// every server loop. Hand-declared because the workspace vendors no
// `libc` and `std` exposes no signal API.

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

fn sigint_seen() -> bool {
    SIGINT_SEEN.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGINT_SEEN.store(true, Ordering::SeqCst);
}

/// Routes SIGINT to a graceful shutdown of every [`Server::run`] loop in
/// this process. Call once, before `run`. No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// Routes SIGINT to a graceful shutdown of every [`Server::run`] loop in
/// this process. Call once, before `run`. No-op on non-Unix targets.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ServerConfig {
        ServerConfig {
            jobs: 2,
            queue_capacity: 2,
            default_deadline_ms: 5_000,
            idle_timeout_ms: 5_000,
            enable_test_ops: true,
            ..ServerConfig::default()
        }
    }

    fn start(config: ServerConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle, join)
    }

    fn request(addr: SocketAddr, line: &str) -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut payload = line.to_string();
        payload.push('\n');
        stream.write_all(payload.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("reply");
        crate::json::parse(response.trim()).expect("json reply")
    }

    fn test_job(conn: u64, affinity: u64, priority: Priority) -> Job {
        let (reply, _discard) = mpsc::sync_channel(1);
        Job {
            envelope: Envelope {
                id: None,
                deadline_ms: None,
                priority,
                request: Request::Stats,
            },
            deadline: Instant::now() + Duration::from_secs(5),
            reply,
            conn,
            affinity,
        }
    }

    #[test]
    fn farm_prefers_warm_workers_within_the_depth_slack() {
        let farm = Farm::new(2, 16);
        farm.record_recent(1, 77);
        let routed = farm
            .dispatch(test_job(1, 77, Priority::Interactive))
            .ok()
            .expect("under capacity");
        assert_eq!(routed.worker, 1, "affinity routes to the warm worker");
        assert!(routed.affinity_hit);
        // No affinity: load balance to the shallowest worker instead.
        let routed = farm
            .dispatch(test_job(2, 0, Priority::Interactive))
            .ok()
            .expect("under capacity");
        assert_eq!(routed.worker, 0);
        assert!(!routed.affinity_hit);
    }

    #[test]
    fn farm_bounds_the_queue_and_steals_from_the_cold_end() {
        let farm = Farm::new(2, 2);
        farm.record_recent(0, 5);
        assert!(farm.dispatch(test_job(1, 5, Priority::Batch)).is_ok());
        assert!(farm.dispatch(test_job(2, 5, Priority::Batch)).is_ok());
        assert!(
            farm.dispatch(test_job(3, 5, Priority::Batch)).is_err(),
            "capacity 2 is full"
        );
        // Worker 1 owns nothing; it steals worker 0's *newest* job,
        // leaving the warm front with its owner.
        let (job, stolen) = farm.take(1, None).expect("steal");
        assert!(stolen);
        assert_eq!(job.conn, 2);
        let (job, stolen) = farm.take(0, None).expect("own job");
        assert!(!stolen);
        assert_eq!(job.conn, 1);
        assert!(farm.take(0, None).is_none());
        assert_eq!(farm.queued.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn lanes_favor_interactive_and_alternate_clients() {
        let farm = Farm::new(1, 16);
        assert!(farm.dispatch(test_job(7, 0, Priority::Batch)).is_ok());
        assert!(farm.dispatch(test_job(7, 0, Priority::Batch)).is_ok());
        assert!(farm.dispatch(test_job(8, 0, Priority::Batch)).is_ok());
        assert!(farm.dispatch(test_job(9, 0, Priority::Interactive)).is_ok());
        // Interactive jumps the entire batch lane.
        let (job, _) = farm.take(0, None).expect("interactive first");
        assert_eq!(job.conn, 9);
        // Fairness: having just served conn 7, prefer conn 8's job even
        // though 7's are older.
        let (job, _) = farm.take(0, Some(7)).expect("fair pop");
        assert_eq!(job.conn, 8);
        let (job, _) = farm.take(0, Some(8)).expect("remaining");
        assert_eq!(job.conn, 7);
    }

    #[test]
    fn serves_compile_and_reaps_on_handle() {
        let (addr, handle, join) = start(test_config());
        let response = request(
            addr,
            r#"{"op":"compile","id":1,"source":"cell a() { box metal (0,0) (8,4); } place a() at (0,0);"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("id"), Some(&Json::Int(1)));
        let cif = response.get("cif").and_then(Json::as_str).expect("cif");
        assert!(cif.contains("DS"), "{cif}");
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn serves_pnr_with_routed_cif_and_lvs() {
        let (addr, handle, join) = start(test_config());
        // Two transistors on one diffusion strip: enough to extract a
        // real netlist and route it.
        let source = "cell inv() { \
             box diff (0, 0) (4, 30); \
             box poly (-4, 8) (8, 10); \
             box poly (-4, 20) (8, 22); \
             box implant (-2, 18) (6, 24); \
             box contact (1, 14) (3, 16); \
             box metal (0, 13) (12, 17); } \
             place inv() at (0, 0);";
        let response = request(
            addr,
            &format!(
                r#"{{"op":"pnr","id":7,"source":{}}}"#,
                Json::Str(source.into())
            ),
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
        assert_eq!(response.get("id"), Some(&Json::Int(7)));
        assert_eq!(response.get("cells"), Some(&Json::Int(2)));
        assert_eq!(response.get("lvs_ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("nets"), response.get("routed"));
        let cif = response.get("cif").and_then(Json::as_str).expect("cif");
        assert!(cif.contains("DS"), "{cif}");
        // An unknown stack is a pipeline error naming the stack.
        let bad = request(
            addr,
            &format!(
                r#"{{"op":"pnr","source":{},"stack":"cmos9"}}"#,
                Json::Str(source.into())
            ),
        );
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        let detail = bad.get("detail").and_then(Json::as_str).expect("detail");
        assert!(detail.contains("cmos9"), "{detail}");
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn malformed_lines_do_not_kill_the_connection() {
        let (addr, handle, join) = start(test_config());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"this is not json\n{\"op\":\"stats\"}\n")
            .expect("send");
        let mut reader = BufReader::new(stream);
        let mut first = String::new();
        reader.read_line(&mut first).expect("bad-request reply");
        let first = crate::json::parse(first.trim()).expect("json");
        assert_eq!(
            first.get("error").and_then(Json::as_str),
            Some(kind::BAD_REQUEST)
        );
        let mut second = String::new();
        reader.read_line(&mut second).expect("stats reply");
        let second = crate::json::parse(second.trim()).expect("json");
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(second.get("bad_requests"), Some(&Json::Int(1)));
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn stats_count_sims_per_engine_and_responses_agree() {
        let (addr, handle, join) = start(test_config());
        let source = Json::Str("machine m { reg a[4]; state s { a := a + 1; } }".into());
        let compiled = request(
            addr,
            &format!(r#"{{"op":"sim","source":{source},"cycles":5}}"#),
        );
        assert_eq!(compiled.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            compiled.get("engine").and_then(Json::as_str),
            Some("compiled")
        );
        let interp = request(
            addr,
            &format!(r#"{{"op":"sim","source":{source},"cycles":5,"engine":"interp"}}"#),
        );
        assert_eq!(interp.get("engine").and_then(Json::as_str), Some("interp"));
        // The engines must agree on every architectural field.
        assert_eq!(compiled.get("regs"), interp.get("regs"));
        assert_eq!(compiled.get("cycles"), interp.get("cycles"));
        assert_eq!(compiled.get("state"), interp.get("state"));
        let stats = request(addr, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("sim.compiled"), Some(&Json::Int(1)));
        assert_eq!(stats.get("sim.interp"), Some(&Json::Int(1)));
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn priority_lanes_and_affinity_show_in_stats() {
        let (addr, handle, join) = start(test_config());
        let source = r#""cell a() { box metal (0,0) (8,4); } place a() at (0,0);""#;
        // One persistent connection so both compiles share a conn id;
        // the repeat lands on the worker already warm for the source.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for priority in ["batch", "interactive"] {
            let line =
                format!("{{\"op\":\"compile\",\"source\":{source},\"priority\":\"{priority}\"}}\n");
            stream.write_all(line.as_bytes()).expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            let reply = crate::json::parse(reply.trim()).expect("json");
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
        }
        let stats = request(addr, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("batch"), Some(&Json::Int(1)));
        assert_eq!(stats.get("interactive"), Some(&Json::Int(1)));
        assert_eq!(stats.get("affinity_hits"), Some(&Json::Int(1)));
        assert_eq!(stats.get("shards"), Some(&Json::Int(8)));
        assert!(stats.get("mem_entries").is_some());
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn invalid_priority_is_a_bad_request() {
        let (addr, handle, join) = start(test_config());
        let reply = request(addr, r#"{"op":"drc","source":"x","priority":"turbo"}"#);
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some(kind::BAD_REQUEST)
        );
        let detail = reply.get("detail").and_then(Json::as_str).expect("detail");
        assert!(detail.contains("priority"), "{detail}");
        handle.shutdown();
        join.join().expect("clean exit");
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let (addr, _handle, join) = start(test_config());
        let response = request(addr, r#"{"op":"shutdown","id":"bye"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("id").and_then(Json::as_str), Some("bye"));
        join.join().expect("clean exit");
    }

    #[test]
    fn idle_connections_are_reaped() {
        let (addr, handle, join) = start(ServerConfig {
            idle_timeout_ms: 150,
            ..test_config()
        });
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);
        let mut buffer = String::new();
        // The server closes the idle socket; the client sees EOF.
        let n = reader.read_line(&mut buffer).expect("EOF, not hang");
        assert_eq!(n, 0, "reaped without sending anything: {buffer:?}");
        handle.shutdown();
        join.join().expect("clean exit");
    }
}
