//! # silc-serve — the compile server
//!
//! Gray's paper pitches silicon compilation as a *programming
//! environment*: designers iterate against a long-lived service, not a
//! cold process per edit. This crate is that service. `silc serve`
//! keeps ONE [`silc_incr::Engine`] warm — its in-memory store and
//! optional disk cache shared by every client — and speaks a
//! line-oriented protocol cheap enough for editors, build systems and
//! `nc` alike: one JSON object per request line, one per response line
//! (see [`protocol`]).
//!
//! The interesting engineering is not the happy path but the failure
//! envelope, and each failure has a first-class answer on the wire:
//!
//! | condition | response |
//! |---|---|
//! | compute queue full | `{"ok":false,"error":"overloaded",...}` |
//! | deadline exceeded | `{"ok":false,"error":"timeout",...}` |
//! | unparseable line | `{"ok":false,"error":"bad_request",...}` |
//! | pipeline failure | `{"ok":false,"error":"error","detail":"<stage>: ..."}` |
//!
//! A `compile` response's `cif` field is byte-identical to what
//! `silc compile` prints on stdout for the same source — the server is
//! a transport, never a different compiler.
//!
//! See [`server`] for the threading model and shutdown semantics.

pub mod json;
pub mod protocol;
pub mod server;

pub use json::Json;
pub use protocol::{parse_request, Envelope, Priority, Request};
pub use server::{install_sigint_handler, Server, ServerConfig, ShutdownHandle};
