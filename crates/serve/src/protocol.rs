//! The serve wire protocol: one JSON object per line, each answered by
//! one JSON object on a line of its own.
//!
//! # Requests
//!
//! ```json
//! {"op":"compile","source":"cell a() {...}","no_drc":false,"extract":false}
//! {"op":"sim","source":"machine m {...}","cycles":10000,"engine":"compiled"}
//! {"op":"drc","source":"cell a() {...}"}
//! {"op":"pnr","source":"cell a() {...}","stack":"mead-conway-nmos"}
//! {"op":"verify","source":".i 2\n...","lang":"pla","against":".i 2\n..."}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Every request may carry `"id"` (any scalar, echoed verbatim in the
//! response so clients can pipeline), `"deadline_ms"` (per-request
//! compute budget overriding the server default) and `"priority"`
//! (`"interactive"`, the default, or `"batch"` — batch traffic yields
//! to interactive traffic in the worker queues).
//!
//! # Responses
//!
//! Success: `{"id":...,"ok":true,"op":"<op>",...per-op fields...}`.
//! Failure: `{"id":...,"ok":false,"error":"<kind>","detail":"..."}` where
//! `error` is one of the [`kind`] constants — `"overloaded"` (queue
//! full, retry later), `"timeout"` (deadline exceeded), `"bad_request"`
//! (unparseable or unknown), `"error"` (the pipeline failed; `detail`
//! names the failing stage).

use crate::json::{parse, Json};
use silc_exec::SimEngine;

/// Failure kinds carried in the `error` field of a failure response.
pub mod kind {
    /// The compute queue was full; the request was never enqueued.
    pub const OVERLOADED: &str = "overloaded";
    /// The deadline passed before a worker finished the request.
    pub const TIMEOUT: &str = "timeout";
    /// The line was not a valid request.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The pipeline failed; `detail` is `"<stage>: <message>"`.
    pub const ERROR: &str = "error";
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Full SIL pipeline; mirrors `silc compile` (the `cif` field of the
    /// response is byte-identical to the CLI's stdout).
    Compile {
        /// SIL source text.
        source: String,
        /// Skip DRC (and emit CIF regardless), like `--no-drc`.
        no_drc: bool,
        /// Also extract the netlist summary.
        extract: bool,
    },
    /// Parse and simulate an ISL machine; mirrors `silc sim`.
    Sim {
        /// ISL source text.
        source: String,
        /// Cycle budget (the CLI default is 10 000).
        cycles: u64,
        /// Engine override; `None` uses the server's default.
        engine: Option<SimEngine>,
    },
    /// Elaborate + flatten + DRC only; report violations without CIF.
    Drc {
        /// SIL source text.
        source: String,
    },
    /// Place and route the design's extracted netlist; mirrors
    /// `silc pnr` (the `cif` field is the routed layout).
    Pnr {
        /// SIL source text.
        source: String,
        /// Routing stack name; `None` uses the default stack.
        stack: Option<String>,
    },
    /// Equivalence-check an artifact against its specification; mirrors
    /// `silc verify`.
    Verify {
        /// Source text of the artifact to check.
        source: String,
        /// Source language: `"pla"`, `"isl"` or `"sil"` (serve carries
        /// text, not file names, so the extension travels here).
        lang: String,
        /// PLA spec text to check a `"pla"` source against instead of
        /// its own minimized realization.
        against: Option<String>,
        /// Routing stack for `"sil"` sources; `None` uses the default.
        stack: Option<String>,
    },
    /// Server statistics; answered inline, never queued.
    Stats,
    /// Graceful shutdown: drain in-flight jobs, then exit.
    Shutdown,
    /// Test-only: hold a worker for `ms` milliseconds. Rejected unless
    /// the server was built with `enable_test_ops`.
    Sleep {
        /// How long to occupy the worker.
        ms: u64,
    },
}

/// Scheduling priority carried in the optional `priority` field. The
/// server keeps two lanes per worker; interactive jobs are always
/// dequeued before batch jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Priority {
    /// The default: editor/CLI round-trips that jump batch traffic.
    #[default]
    Interactive,
    /// Bulk traffic that yields to interactive requests.
    Batch,
}

impl Request {
    /// The `op` string echoed in success responses.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Compile { .. } => "compile",
            Request::Sim { .. } => "sim",
            Request::Drc { .. } => "drc",
            Request::Pnr { .. } => "pnr",
            Request::Verify { .. } => "verify",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Sleep { .. } => "sleep",
        }
    }

    /// True for ops answered on the connection thread (no worker, no
    /// queue, no deadline): `stats` and `shutdown` must keep answering
    /// even when every worker is busy.
    pub fn is_control(&self) -> bool {
        matches!(self, Request::Stats | Request::Shutdown)
    }

    /// A 64-bit FNV-1a hash of the request's cacheable identity (op
    /// tag and source text), used by the farm's cache-affinity router:
    /// two requests with equal hashes hit the same engine entries, so
    /// they should land on the same worker's warm shard path. Never
    /// zero for compute ops; zero (no affinity) for control and test
    /// ops.
    pub fn affinity(&self) -> u64 {
        let (tag, source) = match self {
            Request::Compile { source, .. } => (1u8, source.as_str()),
            Request::Sim { source, .. } => (2, source.as_str()),
            Request::Drc { source } => (3, source.as_str()),
            Request::Pnr { source, .. } => (4, source.as_str()),
            Request::Verify { source, .. } => (5, source.as_str()),
            Request::Stats | Request::Shutdown | Request::Sleep { .. } => return 0,
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &byte in std::iter::once(&tag).chain(source.as_bytes()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h | 1
    }
}

/// A request plus its wire envelope (client id, deadline override).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Echoed verbatim in the response, when the client sent one.
    pub id: Option<Json>,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Scheduling lane (defaults to interactive).
    pub priority: Priority,
    /// The decoded operation.
    pub request: Request,
}

fn required_str(obj: &Json, key: &str, op: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("`{op}` needs a string `{key}` field"))
}

fn optional_bool(obj: &Json, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn optional_engine(obj: &Json) -> Result<Option<SimEngine>, String> {
    match obj.get("engine") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let name = v.as_str().ok_or("`engine` must be a string")?;
            name.parse().map(Some)
        }
    }
}

fn optional_priority(obj: &Json) -> Result<Priority, String> {
    match obj.get("priority") {
        None | Some(Json::Null) => Ok(Priority::Interactive),
        Some(v) => match v.as_str() {
            Some("interactive") => Ok(Priority::Interactive),
            Some("batch") => Ok(Priority::Batch),
            _ => Err("`priority` must be \"interactive\" or \"batch\"".into()),
        },
    }
}

fn optional_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// A message suitable for the `detail` field of a `bad_request`
/// response: JSON syntax errors, a missing/unknown `op`, or wrongly
/// typed fields.
pub fn parse_request(line: &str, allow_test_ops: bool) -> Result<Envelope, String> {
    let obj = parse(line)?;
    if !matches!(obj, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string `op` field")?
        .to_string();
    let request = match op.as_str() {
        "compile" => Request::Compile {
            source: required_str(&obj, "source", "compile")?,
            no_drc: optional_bool(&obj, "no_drc")?,
            extract: optional_bool(&obj, "extract")?,
        },
        "sim" => Request::Sim {
            source: required_str(&obj, "source", "sim")?,
            cycles: optional_u64(&obj, "cycles")?.unwrap_or(10_000),
            engine: optional_engine(&obj)?,
        },
        "drc" => Request::Drc {
            source: required_str(&obj, "source", "drc")?,
        },
        "pnr" => Request::Pnr {
            source: required_str(&obj, "source", "pnr")?,
            stack: match obj.get("stack") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_str().ok_or("`stack` must be a string")?.to_string()),
            },
        },
        "verify" => {
            let lang = required_str(&obj, "lang", "verify")?;
            if !matches!(lang.as_str(), "pla" | "isl" | "sil") {
                return Err(format!(
                    "`lang` must be \"pla\", \"isl\" or \"sil\", got `{lang}`"
                ));
            }
            Request::Verify {
                source: required_str(&obj, "source", "verify")?,
                lang,
                against: match obj.get("against") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().ok_or("`against` must be a string")?.to_string()),
                },
                stack: match obj.get("stack") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().ok_or("`stack` must be a string")?.to_string()),
                },
            }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "sleep" if allow_test_ops => Request::Sleep {
            ms: optional_u64(&obj, "ms")?.unwrap_or(0),
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    Ok(Envelope {
        id: obj.get("id").cloned(),
        deadline_ms: optional_u64(&obj, "deadline_ms")?,
        priority: optional_priority(&obj)?,
        request,
    })
}

fn envelope(id: &Option<Json>, ok: bool) -> Vec<(String, Json)> {
    let mut members = Vec::with_capacity(8);
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.push(("ok".to_string(), Json::Bool(ok)));
    members
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: &Option<Json>, op: &str, fields: Vec<(String, Json)>) -> String {
    let mut members = envelope(id, true);
    members.push(("op".to_string(), Json::Str(op.to_string())));
    members.extend(fields);
    Json::Obj(members).to_string()
}

/// Renders a failure response line (no trailing newline). `kind` is one
/// of the [`kind`] constants.
pub fn err_response(id: &Option<Json>, kind: &str, detail: &str) -> String {
    let mut members = envelope(id, false);
    members.push(("error".to_string(), Json::Str(kind.to_string())));
    members.push(("detail".to_string(), Json::Str(detail.to_string())));
    Json::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        let e = parse_request(
            r#"{"op":"compile","source":"cell a() {}","no_drc":true,"id":3}"#,
            false,
        )
        .unwrap();
        assert_eq!(e.id, Some(Json::Int(3)));
        assert_eq!(
            e.request,
            Request::Compile {
                source: "cell a() {}".into(),
                no_drc: true,
                extract: false,
            }
        );
        assert!(!e.request.is_control());

        let e = parse_request(r#"{"op":"sim","source":"machine m {}"}"#, false).unwrap();
        assert_eq!(
            e.request,
            Request::Sim {
                source: "machine m {}".into(),
                cycles: 10_000,
                engine: None,
            }
        );

        let e = parse_request(
            r#"{"op":"sim","source":"machine m {}","engine":"interp"}"#,
            false,
        )
        .unwrap();
        assert_eq!(
            e.request,
            Request::Sim {
                source: "machine m {}".into(),
                cycles: 10_000,
                engine: Some(SimEngine::Interp),
            }
        );

        let e = parse_request(r#"{"op":"drc","source":"x","deadline_ms":250}"#, false).unwrap();
        assert_eq!(e.deadline_ms, Some(250));

        let e = parse_request(r#"{"op":"pnr","source":"cell a() {}"}"#, false).unwrap();
        assert_eq!(
            e.request,
            Request::Pnr {
                source: "cell a() {}".into(),
                stack: None,
            }
        );
        let e = parse_request(r#"{"op":"pnr","source":"x","stack":"nmos"}"#, false).unwrap();
        assert_eq!(
            e.request,
            Request::Pnr {
                source: "x".into(),
                stack: Some("nmos".into()),
            }
        );

        let e = parse_request(r#"{"op":"verify","source":".i 1","lang":"pla"}"#, false).unwrap();
        assert_eq!(
            e.request,
            Request::Verify {
                source: ".i 1".into(),
                lang: "pla".into(),
                against: None,
                stack: None,
            }
        );
        let e = parse_request(
            r#"{"op":"verify","source":".i 1","lang":"pla","against":".i 1"}"#,
            false,
        )
        .unwrap();
        assert_eq!(
            e.request,
            Request::Verify {
                source: ".i 1".into(),
                lang: "pla".into(),
                against: Some(".i 1".into()),
                stack: None,
            }
        );

        for op in ["stats", "shutdown"] {
            let e = parse_request(&format!(r#"{{"op":"{op}"}}"#), false).unwrap();
            assert!(e.request.is_control(), "{op}");
            assert_eq!(e.request.op(), op);
        }
    }

    #[test]
    fn priority_parses_and_defaults_to_interactive() {
        let e = parse_request(r#"{"op":"drc","source":"x"}"#, false).unwrap();
        assert_eq!(e.priority, Priority::Interactive);
        let e = parse_request(r#"{"op":"drc","source":"x","priority":"batch"}"#, false).unwrap();
        assert_eq!(e.priority, Priority::Batch);
        let e = parse_request(
            r#"{"op":"drc","source":"x","priority":"interactive"}"#,
            false,
        )
        .unwrap();
        assert_eq!(e.priority, Priority::Interactive);
        for bad in [r#""turbo""#, "3"] {
            let err = parse_request(
                &format!(r#"{{"op":"drc","source":"x","priority":{bad}}}"#),
                false,
            )
            .unwrap_err();
            assert!(err.contains("priority"), "{err}");
        }
    }

    #[test]
    fn affinity_tracks_the_cacheable_identity() {
        let parse = |line: &str| parse_request(line, true).unwrap().request;
        let a = parse(r#"{"op":"compile","source":"cell a() {}"}"#).affinity();
        let b = parse(r#"{"op":"compile","source":"cell b() {}"}"#).affinity();
        assert_ne!(a, 0, "compute ops always have affinity");
        assert_ne!(a, b, "different sources, different affinity");
        // Same source, same op -> same hash; a different op on the same
        // source keys different cache entries, so it hashes apart.
        let a2 = parse(r#"{"op":"compile","source":"cell a() {}","id":9}"#).affinity();
        assert_eq!(a, a2, "envelope fields must not perturb affinity");
        let drc = parse(r#"{"op":"drc","source":"cell a() {}"}"#).affinity();
        assert_ne!(a, drc);
        let pnr = parse(r#"{"op":"pnr","source":"cell a() {}"}"#).affinity();
        assert_ne!(pnr, 0, "pnr is a compute op");
        assert!(pnr != a && pnr != drc, "pnr keys its own cache entries");
        let pnr2 = parse(r#"{"op":"pnr","source":"cell a() {}","stack":"nmos"}"#).affinity();
        assert_eq!(pnr, pnr2, "affinity is per-source, not per-stack");
        let verify = parse(r#"{"op":"verify","source":"cell a() {}","lang":"sil"}"#).affinity();
        assert_ne!(verify, 0, "verify is a compute op");
        assert!(
            verify != a && verify != drc && verify != pnr,
            "verify keys its own cache entries"
        );
        assert_eq!(parse(r#"{"op":"stats"}"#).affinity(), 0);
        assert_eq!(parse(r#"{"op":"sleep","ms":1}"#).affinity(), 0);
    }

    #[test]
    fn sleep_is_gated_behind_test_ops() {
        let line = r#"{"op":"sleep","ms":50}"#;
        assert!(parse_request(line, false).unwrap_err().contains("sleep"));
        assert_eq!(
            parse_request(line, true).unwrap().request,
            Request::Sleep { ms: 50 }
        );
    }

    #[test]
    fn malformed_lines_name_the_offence() {
        assert!(parse_request("not json", false).is_err());
        assert!(parse_request("[1,2]", false)
            .unwrap_err()
            .contains("object"));
        assert!(parse_request(r#"{"op":"warp"}"#, false)
            .unwrap_err()
            .contains("warp"));
        assert!(parse_request(r#"{"op":"compile"}"#, false)
            .unwrap_err()
            .contains("source"));
        assert!(parse_request(r#"{"op":"pnr"}"#, false)
            .unwrap_err()
            .contains("source"));
        assert!(
            parse_request(r#"{"op":"pnr","source":"x","stack":7}"#, false)
                .unwrap_err()
                .contains("`stack` must be a string")
        );
        assert!(parse_request(r#"{"op":"verify","source":"x"}"#, false)
            .unwrap_err()
            .contains("lang"));
        assert!(
            parse_request(r#"{"op":"verify","source":"x","lang":"vhdl"}"#, false)
                .unwrap_err()
                .contains("vhdl")
        );
        assert!(
            parse_request(r#"{"op":"sim","source":"m","cycles":-1}"#, false)
                .unwrap_err()
                .contains("cycles")
        );
        assert!(
            parse_request(r#"{"op":"sim","source":"m","engine":"warp"}"#, false)
                .unwrap_err()
                .contains("unknown engine `warp`")
        );
        assert!(
            parse_request(r#"{"op":"sim","source":"m","engine":7}"#, false)
                .unwrap_err()
                .contains("`engine` must be a string")
        );
    }

    #[test]
    fn responses_echo_the_id_and_shape() {
        let id = Some(Json::Str("req-1".into()));
        let ok = ok_response(&id, "compile", vec![("cif".into(), Json::Str("DS".into()))]);
        assert_eq!(ok, r#"{"id":"req-1","ok":true,"op":"compile","cif":"DS"}"#);
        let err = err_response(&None, kind::OVERLOADED, "queue full");
        assert_eq!(
            err,
            r#"{"ok":false,"error":"overloaded","detail":"queue full"}"#
        );
    }
}
