//! # silc-synth — behavioral-to-structural compilation
//!
//! The paper's second definition of silicon compilation: take a behavioral
//! (ISP) description and map it onto a physical structure, "although at a
//! cost in space and speed". Its reference \[6\] compiled a PDP-8 from an
//! ISP description onto **standard modules** with "a chip count within 50%
//! of a commercial design". This crate rebuilds that flow:
//!
//! * [`ModuleClass`] — a standard-module library with a documented
//!   MSI/TTL-era cost model (packages, layout area, delay);
//! * [`synthesize`] — datapath allocation from a parsed
//!   [`silc_rtl::Machine`]: registers, memories, functional units,
//!   multiplexers for registers with several sources, and a PLA-based
//!   control unit extracted from the state machine;
//! * [`Sharing`] — the allocation policy ablated in experiment E5:
//!   share one functional unit per operation class (mux-bound) or
//!   instantiate one per textual operation (fast but large);
//! * [`Estimate`] — package count, area and cycle-time roll-up, the
//!   numbers experiment E1 compares against the commercial baseline.
//!
//! # Example
//!
//! ```
//! use silc_rtl::parse;
//! use silc_synth::{synthesize, SynthOptions};
//!
//! let m = parse("
//!     machine counter {
//!         reg n[8];
//!         state run { n := n + 1; }
//!     }
//! ")?;
//! let alloc = synthesize(&m, &SynthOptions::default());
//! assert!(alloc.estimate.packages >= 2); // register + incrementer at least
//! # Ok::<(), silc_rtl::RtlError>(())
//! ```

mod alloc;
mod control;
mod estimate;
mod modules;

pub use alloc::{
    synthesize, synthesize_traced, AllocatedModule, Allocation, Sharing, SynthOptions,
};
pub use control::{control_conditions, control_table, expr_text, ControlTable};
pub use estimate::Estimate;
pub use modules::ModuleClass;
