use crate::{Estimate, ModuleClass};
use silc_netlist::Netlist;
use silc_rtl::{BinaryOp, Expr, Machine, Stmt, Target, UnaryOp};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Functional-unit allocation policy — the design choice ablated in
/// experiment E5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sharing {
    /// One functional unit per (operation class, width); registers that
    /// need a shared unit reach it through multiplexers. Smaller, slower.
    #[default]
    Shared,
    /// One functional unit per textual operation. Larger, faster (no mux
    /// levels in front of units).
    PerOperation,
}

/// Options controlling synthesis.
#[derive(Debug, Clone, Default)]
pub struct SynthOptions {
    /// Functional-unit sharing policy.
    pub sharing: Sharing,
}

/// One allocated standard module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocatedModule {
    /// Instance name.
    pub name: String,
    /// What it is.
    pub class: ModuleClass,
}

/// The result of behavioral synthesis.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Every allocated module.
    pub modules: Vec<AllocatedModule>,
    /// A structural netlist wiring the modules.
    pub netlist: Netlist,
    /// Cost roll-up.
    pub estimate: Estimate,
    /// Control-unit shape: (state bits, PLA inputs, PLA outputs, terms).
    pub control: (u32, u32, u32, u32),
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "allocation of {} modules", self.modules.len())?;
        write!(f, "{}", self.estimate)
    }
}

/// Compiles a behavioral machine onto standard modules.
///
/// The allocation follows the classic module-set flow of the paper's
/// reference \[6\]:
///
/// 1. every declared register/memory becomes a storage module;
/// 2. every operation in the register-transfer bodies becomes (or shares)
///    a functional unit;
/// 3. registers written from several distinct sources get input
///    multiplexers;
/// 4. the state machine becomes a state register plus a control PLA whose
///    product terms come from the states' branch structure.
///
/// # Example
///
/// ```
/// use silc_rtl::parse;
/// use silc_synth::{synthesize, Sharing, SynthOptions};
/// let m = parse("machine m { reg a[8]; reg b[8];
///     state s { a := a + b; b := a - b; } }")?;
/// let shared = synthesize(&m, &SynthOptions { sharing: Sharing::Shared });
/// let fast = synthesize(&m, &SynthOptions { sharing: Sharing::PerOperation });
/// // The shared design needs no more functional packages.
/// assert!(shared.estimate.packages <= fast.estimate.packages);
/// # Ok::<(), silc_rtl::RtlError>(())
/// ```
pub fn synthesize(machine: &Machine, options: &SynthOptions) -> Allocation {
    synthesize_traced(machine, options, &silc_trace::Tracer::disabled())
}

/// [`synthesize`] with a [`Tracer`](silc_trace::Tracer): records a `synth.allocate` span and
/// `synth.modules` / `synth.pla_terms` counters. With a disabled tracer
/// this is exactly [`synthesize`].
pub fn synthesize_traced(
    machine: &Machine,
    options: &SynthOptions,
    tracer: &silc_trace::Tracer,
) -> Allocation {
    let _s = silc_trace::span!(tracer, "synth.allocate");
    let allocation = synthesize_impl(machine, options);
    tracer.add("synth.modules", allocation.modules.len() as u64);
    tracer.add("synth.pla_terms", u64::from(allocation.control.3));
    allocation
}

fn synthesize_impl(machine: &Machine, options: &SynthOptions) -> Allocation {
    let widths = SignalWidths::gather(machine);
    let mut modules: Vec<AllocatedModule> = Vec::new();

    // 1. Storage.
    for r in &machine.regs {
        modules.push(AllocatedModule {
            name: format!("reg_{}", r.name),
            class: ModuleClass::Register { width: r.width },
        });
    }
    for m in &machine.mems {
        modules.push(AllocatedModule {
            name: format!("mem_{}", m.name),
            class: ModuleClass::Memory {
                words: m.words,
                width: m.width,
            },
        });
    }

    // 2. Gather distinct transfers and conditions.
    let mut sources: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut mem_writes: BTreeMap<String, usize> = BTreeMap::new();
    let mut conditions: Vec<Expr> = Vec::new();
    let mut ops: Vec<(OpClass, u32)> = Vec::new();
    let mut term_count: u32 = 0;

    // Identical expressions share hardware wherever they appear: the same
    // source registers feed the same unit through the same wiring, whether
    // the reuse is within a state (TAD slicing its 13-bit sum twice) or
    // across states (PC+1 in fetch and in the ISZ skip).
    let mut seen_exprs: Vec<Expr> = Vec::new();
    for state in &machine.states {
        term_count += count_leaves(&state.body);
        collect_block(
            &state.body,
            machine,
            &widths,
            &mut sources,
            &mut mem_writes,
            &mut conditions,
            &mut ops,
            &mut seen_exprs,
        );
    }

    // 3. Functional units.
    match options.sharing {
        Sharing::Shared => {
            let mut uses: BTreeMap<(OpClass, u32), u32> = BTreeMap::new();
            for &(class, width) in &ops {
                *uses.entry((class, width)).or_insert(0) += 1;
            }
            for (i, (&(class, width), &count)) in uses.iter().enumerate() {
                modules.push(AllocatedModule {
                    name: format!("fu{i}_{}", class.stem()),
                    class: class.module(width),
                });
                if count > 1 {
                    // Operand steering mux in front of the shared unit.
                    modules.push(AllocatedModule {
                        name: format!("fu{i}_inmux"),
                        class: ModuleClass::Mux { ways: count, width },
                    });
                }
            }
        }
        Sharing::PerOperation => {
            for (i, &(class, width)) in ops.iter().enumerate() {
                modules.push(AllocatedModule {
                    name: format!("op{i}_{}", class.stem()),
                    class: class.module(width),
                });
            }
        }
    }

    // 4. Register input multiplexers. Under shared allocation the machine
    // is bus-organised: the mux selects among unit output buses, so
    // sources with the same signature share a way.
    let mux_ways = |srcs: &Vec<Expr>| -> u32 {
        match options.sharing {
            Sharing::Shared => {
                let mut sigs: Vec<&'static str> = srcs.iter().map(source_signature).collect();
                sigs.sort_unstable();
                sigs.dedup();
                sigs.len() as u32
            }
            Sharing::PerOperation => srcs.len() as u32,
        }
    };
    let mut select_bits_total: u32 = 0;
    for (name, srcs) in &sources {
        let ways = mux_ways(srcs);
        if ways > 1 {
            let width = widths.of(name);
            modules.push(AllocatedModule {
                name: format!("mux_{name}"),
                class: ModuleClass::Mux { ways, width },
            });
            select_bits_total += 32 - (ways - 1).leading_zeros();
        }
    }

    // 5. Control unit.
    let state_bits = (usize::BITS - (machine.states.len().max(1) - 1).leading_zeros()).max(1);
    let distinct_conditions = {
        let mut seen: Vec<&Expr> = Vec::new();
        for c in &conditions {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen.len() as u32
    };
    let pla_inputs = state_bits + distinct_conditions;
    let load_enables = sources.len() as u32;
    let mem_write_enables = mem_writes.len() as u32;
    let pla_outputs = state_bits + load_enables + mem_write_enables + select_bits_total + 1;
    let terms = term_count.max(machine.states.len() as u32);
    modules.push(AllocatedModule {
        name: "control".into(),
        class: ModuleClass::ControlPla {
            inputs: pla_inputs,
            outputs: pla_outputs,
            terms,
        },
    });
    modules.push(AllocatedModule {
        name: "state".into(),
        class: ModuleClass::StateRegister { bits: state_bits },
    });

    // 6. Critical path: worst assignment expression, plus the register
    // mux it feeds.
    let mut worst_path = 0;
    for (name, srcs) in &sources {
        let ways = mux_ways(srcs);
        let mux = if ways > 1 {
            ModuleClass::Mux {
                ways,
                width: widths.of(name),
            }
            .delay_ns()
        } else {
            0
        };
        for s in srcs {
            worst_path = worst_path.max(expr_delay(s, machine, &widths) + mux);
        }
    }
    for cond in &conditions {
        worst_path = worst_path.max(expr_delay(cond, machine, &widths));
    }
    // Shared units add one mux level on the unit inputs.
    if options.sharing == Sharing::Shared && !ops.is_empty() {
        worst_path += ModuleClass::Mux { ways: 2, width: 1 }.delay_ns();
    }

    let classes: Vec<ModuleClass> = modules.iter().map(|m| m.class).collect();
    let estimate = Estimate::from_modules(&classes, worst_path);
    let netlist = emit_netlist(machine, &modules, &sources);

    Allocation {
        modules,
        netlist,
        estimate,
        control: (state_bits, pla_inputs, pla_outputs, terms),
    }
}

// ------------------------------------------------------------------
// Operation classification
// ------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum OpClass {
    Adder,
    Incrementer,
    BitLogic,
    Shifter,
    Comparator,
}

impl OpClass {
    fn module(self, width: u32) -> ModuleClass {
        match self {
            OpClass::Adder => ModuleClass::Adder { width },
            OpClass::Incrementer => ModuleClass::Incrementer { width },
            OpClass::BitLogic => ModuleClass::BitLogic { width },
            OpClass::Shifter => ModuleClass::Shifter { width },
            OpClass::Comparator => ModuleClass::Comparator { width },
        }
    }

    fn stem(self) -> &'static str {
        match self {
            OpClass::Adder => "add",
            OpClass::Incrementer => "inc",
            OpClass::BitLogic => "log",
            OpClass::Shifter => "shl",
            OpClass::Comparator => "cmp",
        }
    }
}

struct SignalWidths {
    map: HashMap<String, u32>,
}

impl SignalWidths {
    fn gather(machine: &Machine) -> SignalWidths {
        let mut map = HashMap::new();
        for r in &machine.regs {
            map.insert(r.name.clone(), r.width);
        }
        for p in machine.inputs.iter().chain(&machine.outputs) {
            map.insert(p.name.clone(), p.width);
        }
        SignalWidths { map }
    }

    fn of(&self, name: &str) -> u32 {
        self.map.get(name).copied().unwrap_or(1)
    }
}

fn expr_width(e: &Expr, machine: &Machine, widths: &SignalWidths) -> u32 {
    match e {
        Expr::Const { width, .. } => width.unwrap_or(16),
        Expr::Ident(name) => widths.of(name),
        Expr::Slice { hi, lo, .. } => hi - lo + 1,
        Expr::MemRead { name, .. } => machine.mem(name).map_or(1, |m| m.width),
        Expr::Unary { op, expr } => {
            if *op == UnaryOp::LogicalNot {
                1
            } else {
                expr_width(expr, machine, widths)
            }
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::LogicalAnd
            | BinaryOp::LogicalOr => 1,
            BinaryOp::Shl | BinaryOp::Shr => expr_width(lhs, machine, widths),
            _ => expr_width(lhs, machine, widths).max(expr_width(rhs, machine, widths)),
        },
        Expr::Concat(parts) => parts.iter().map(|p| expr_width(p, machine, widths)).sum(),
    }
}

fn is_const_one(e: &Expr) -> bool {
    matches!(e, Expr::Const { value: 1, .. })
}

/// How a comparison is implemented in hardware.
enum ComparisonRole {
    /// Instruction decode: a narrow field tested against a constant —
    /// this is a product-term input of the control PLA, not a datapath
    /// module.
    Decode,
    /// Equality against zero over a wide signal: a NOR-tree zero
    /// detector, costed as bit logic of that width.
    ZeroDetect(u32),
    /// A genuine magnitude/equality comparator module.
    Datapath(u32),
}

fn classify_comparison(
    op: &BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
    machine: &Machine,
    widths: &SignalWidths,
) -> ComparisonRole {
    let (konst, other) = match (lhs, rhs) {
        (Expr::Const { value, .. }, o) => (Some(*value), o),
        (o, Expr::Const { value, .. }) => (Some(*value), o),
        _ => (None, lhs),
    };
    let w = expr_width(other, machine, widths);
    match konst {
        // Narrow field against a constant: opcode/bit decode.
        Some(_) if w <= 5 => ComparisonRole::Decode,
        // Wide equality with zero: a zero detector.
        Some(0) if matches!(op, BinaryOp::Eq | BinaryOp::Ne) => ComparisonRole::ZeroDetect(w),
        _ => ComparisonRole::Datapath(
            expr_width(lhs, machine, widths).max(expr_width(rhs, machine, widths)),
        ),
    }
}

/// The "bus signature" of a transfer source: in a bus-organised machine
/// (the PDP-8 very much is one) a register's input mux selects among unit
/// output buses, not among textual expressions. Two sources arriving on
/// the same unit's output bus share a mux way.
fn source_signature(e: &Expr) -> &'static str {
    match e {
        Expr::Binary { op, lhs, rhs } => match op {
            BinaryOp::Add | BinaryOp::Sub => {
                if is_const_one(lhs) || is_const_one(rhs) {
                    "inc"
                } else {
                    "adder"
                }
            }
            BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => "logic",
            BinaryOp::Shl | BinaryOp::Shr => "shift",
            _ => "flag",
        },
        Expr::Unary { .. } => "logic",
        Expr::MemRead { .. } => "membus",
        Expr::Slice { base, .. } => source_signature(base),
        Expr::Concat(_) => "swizzle",
        Expr::Const { .. } => "const",
        Expr::Ident(_) => "direct",
    }
}

fn collect_expr_ops(
    e: &Expr,
    machine: &Machine,
    widths: &SignalWidths,
    ops: &mut Vec<(OpClass, u32)>,
    seen: &mut Vec<Expr>,
) {
    // Common subexpressions within one state share hardware: a Binary
    // node already collected in this state allocates nothing new.
    if matches!(e, Expr::Binary { .. }) {
        if seen.contains(e) {
            return;
        }
        seen.push(e.clone());
    }
    match e {
        Expr::Const { .. } | Expr::Ident(_) => {}
        Expr::Slice { base, .. } => collect_expr_ops(base, machine, widths, ops, seen),
        Expr::MemRead { addr, .. } => collect_expr_ops(addr, machine, widths, ops, seen),
        Expr::Unary { op, expr } => {
            collect_expr_ops(expr, machine, widths, ops, seen);
            let w = expr_width(expr, machine, widths);
            match op {
                // Single-bit complement is control gating, absorbed into
                // the PLA planes.
                UnaryOp::Not | UnaryOp::Neg if w > 1 => {
                    ops.push((OpClass::BitLogic, w));
                }
                _ => {}
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            collect_expr_ops(lhs, machine, widths, ops, seen);
            collect_expr_ops(rhs, machine, widths, ops, seen);
            let w = expr_width(e, machine, widths)
                .max(expr_width(lhs, machine, widths))
                .max(expr_width(rhs, machine, widths));
            match op {
                BinaryOp::Add | BinaryOp::Sub => {
                    if is_const_one(lhs) || is_const_one(rhs) {
                        ops.push((OpClass::Incrementer, w));
                    } else {
                        ops.push((OpClass::Adder, w));
                    }
                }
                BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
                    // Single-bit gates combine control signals; that work
                    // lives in the control PLA's AND/OR planes.
                    if w > 1 {
                        ops.push((OpClass::BitLogic, w));
                    }
                }
                BinaryOp::LogicalAnd | BinaryOp::LogicalOr => {}
                BinaryOp::Shl | BinaryOp::Shr => {
                    ops.push((OpClass::Shifter, expr_width(lhs, machine, widths)));
                }
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => {
                    match classify_comparison(op, lhs, rhs, machine, widths) {
                        ComparisonRole::Decode => {} // absorbed into the control PLA
                        ComparisonRole::ZeroDetect(w) => ops.push((OpClass::BitLogic, w)),
                        ComparisonRole::Datapath(w) => ops.push((OpClass::Comparator, w)),
                    }
                }
            }
        }
        Expr::Concat(parts) => {
            for p in parts {
                collect_expr_ops(p, machine, widths, ops, seen);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_block(
    body: &[Stmt],
    machine: &Machine,
    widths: &SignalWidths,
    sources: &mut BTreeMap<String, Vec<Expr>>,
    mem_writes: &mut BTreeMap<String, usize>,
    conditions: &mut Vec<Expr>,
    ops: &mut Vec<(OpClass, u32)>,
    seen: &mut Vec<Expr>,
) {
    for stmt in body {
        match stmt {
            Stmt::Assign { target, value } => {
                collect_expr_ops(value, machine, widths, ops, seen);
                match target {
                    Target::Signal { name, .. } => {
                        let entry = sources.entry(name.clone()).or_default();
                        if !entry.contains(value) {
                            entry.push(value.clone());
                        }
                    }
                    Target::MemWord { name, addr } => {
                        collect_expr_ops(addr, machine, widths, ops, seen);
                        *mem_writes.entry(name.clone()).or_insert(0) += 1;
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_expr_ops(cond, machine, widths, ops, seen);
                conditions.push(cond.clone());
                collect_block(
                    then_body, machine, widths, sources, mem_writes, conditions, ops, seen,
                );
                collect_block(
                    else_body, machine, widths, sources, mem_writes, conditions, ops, seen,
                );
            }
            Stmt::Goto(_) | Stmt::Halt => {}
        }
    }
}

/// Number of control leaves (distinct condition paths) in a block — the
/// product-term estimate for the control PLA.
fn count_leaves(body: &[Stmt]) -> u32 {
    let mut leaves = 1;
    for stmt in body {
        if let Stmt::If {
            then_body,
            else_body,
            ..
        } = stmt
        {
            leaves += count_leaves(then_body) + count_leaves(else_body) - 1;
        }
    }
    leaves
}

fn expr_delay(e: &Expr, machine: &Machine, widths: &SignalWidths) -> u64 {
    match e {
        Expr::Const { .. } | Expr::Ident(_) => 0,
        Expr::Slice { base, .. } => expr_delay(base, machine, widths),
        Expr::MemRead { name, addr } => {
            let mem = machine.mem(name).map_or(450, |m| {
                ModuleClass::Memory {
                    words: m.words,
                    width: m.width,
                }
                .delay_ns()
            });
            expr_delay(addr, machine, widths) + mem
        }
        Expr::Unary { expr, .. } => expr_delay(expr, machine, widths) + 10,
        Expr::Binary { op, lhs, rhs } => {
            let w = expr_width(e, machine, widths)
                .max(expr_width(lhs, machine, widths))
                .max(expr_width(rhs, machine, widths));
            let unit = match op {
                BinaryOp::Add | BinaryOp::Sub => {
                    if is_const_one(lhs) || is_const_one(rhs) {
                        ModuleClass::Incrementer { width: w }.delay_ns()
                    } else {
                        ModuleClass::Adder { width: w }.delay_ns()
                    }
                }
                BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr => ModuleClass::BitLogic { width: w }.delay_ns(),
                BinaryOp::Shl | BinaryOp::Shr => ModuleClass::Shifter { width: w }.delay_ns(),
                _ => ModuleClass::Comparator { width: w }.delay_ns(),
            };
            expr_delay(lhs, machine, widths).max(expr_delay(rhs, machine, widths)) + unit
        }
        Expr::Concat(parts) => parts
            .iter()
            .map(|p| expr_delay(p, machine, widths))
            .max()
            .unwrap_or(0),
    }
}

// ------------------------------------------------------------------
// Netlist emission
// ------------------------------------------------------------------

fn emit_netlist(
    machine: &Machine,
    modules: &[AllocatedModule],
    sources: &BTreeMap<String, Vec<Expr>>,
) -> Netlist {
    let mut n = Netlist::new(machine.name.clone());
    let clk = n.add_net("clk");
    // One net per storage output and per port.
    for r in &machine.regs {
        n.add_net(format!("q_{}", r.name));
        n.add_net(format!("d_{}", r.name));
    }
    for p in machine.inputs.iter().chain(&machine.outputs) {
        n.add_net(p.name.clone());
    }
    let control_out = n.add_net("control_word");
    for m in modules {
        let name = m.name.clone();
        match &m.class {
            ModuleClass::Register { .. } => {
                let reg = name.trim_start_matches("reg_").to_string();
                let d = n.add_net(format!("d_{reg}"));
                let q = n.add_net(format!("q_{reg}"));
                let load = n.add_net(format!("ld_{reg}"));
                n.add_instance(
                    name,
                    "register",
                    &[("clk", clk), ("d", d), ("q", q), ("ld", load)],
                )
                .expect("unique module names");
            }
            ModuleClass::Memory { .. } => {
                let mem = name.trim_start_matches("mem_").to_string();
                let addr = n.add_net(format!("a_{mem}"));
                let data = n.add_net(format!("dq_{mem}"));
                let we = n.add_net(format!("we_{mem}"));
                n.add_instance(name, "memory", &[("addr", addr), ("dq", data), ("we", we)])
                    .expect("unique module names");
            }
            ModuleClass::Mux { .. } if name.starts_with("mux_") => {
                let reg = name.trim_start_matches("mux_").to_string();
                let ways = sources.get(&reg).map_or(0, Vec::len);
                let d = n.add_net(format!("d_{reg}"));
                let sel = n.add_net(format!("sel_{reg}"));
                let mut conns: Vec<(String, silc_netlist::NetId)> =
                    vec![("y".to_string(), d), ("sel".to_string(), sel)];
                for i in 0..ways {
                    conns.push((format!("i{i}"), n.add_net(format!("src_{reg}_{i}"))));
                }
                let borrowed: Vec<(&str, silc_netlist::NetId)> =
                    conns.iter().map(|(p, id)| (p.as_str(), *id)).collect();
                n.add_instance(name, "mux", &borrowed).expect("unique");
            }
            ModuleClass::ControlPla { .. } => {
                let state_q = n.add_net("state_q");
                n.add_instance(
                    name,
                    "control_pla",
                    &[("state", state_q), ("out", control_out)],
                )
                .expect("unique");
            }
            ModuleClass::StateRegister { .. } => {
                let state_q = n.add_net("state_q");
                let state_d = n.add_net("state_d");
                n.add_instance(
                    name,
                    "state_register",
                    &[("clk", clk), ("d", state_d), ("q", state_q)],
                )
                .expect("unique");
            }
            other => {
                let y = n.add_net(format!("y_{name}"));
                let a = n.add_net(format!("a_{name}"));
                let b = n.add_net(format!("b_{name}"));
                n.add_instance(name, other.kind_name(), &[("a", a), ("b", b), ("y", y)])
                    .expect("unique");
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_rtl::parse;

    fn machine(src: &str) -> Machine {
        parse(src).unwrap()
    }

    #[test]
    fn storage_allocated() {
        let m = machine("machine s { reg a[8]; mem ram[1024][8]; state z { a := a; } }");
        let alloc = synthesize(&m, &SynthOptions::default());
        let kinds = alloc.estimate.count_by_kind.clone();
        assert_eq!(kinds["register"], 1);
        assert_eq!(kinds["memory"], 1);
        assert_eq!(kinds["control_pla"], 1);
        assert_eq!(kinds["state_register"], 1);
    }

    #[test]
    fn incrementer_recognized() {
        let m = machine("machine i { reg a[8]; state s { a := a + 1; } }");
        let alloc = synthesize(&m, &SynthOptions::default());
        assert_eq!(alloc.estimate.count_by_kind["incrementer"], 1);
        assert!(!alloc.estimate.count_by_kind.contains_key("adder"));
    }

    #[test]
    fn full_adds_use_adder() {
        let m = machine("machine a { reg x[8]; reg y[8]; state s { x := x + y; } }");
        let alloc = synthesize(&m, &SynthOptions::default());
        assert_eq!(alloc.estimate.count_by_kind["adder"], 1);
    }

    #[test]
    fn multi_source_register_gets_mux() {
        let m = machine(
            "machine m { reg a[8]; reg b[8];
                state s { if b == 0 { a := a + b; } else { a := b; } } }",
        );
        let alloc = synthesize(&m, &SynthOptions::default());
        assert!(alloc.estimate.count_by_kind["mux"] >= 1);
        assert!(alloc
            .modules
            .iter()
            .any(|md| md.name == "mux_a" && matches!(md.class, ModuleClass::Mux { ways: 2, .. })));
    }

    #[test]
    fn sharing_reduces_units() {
        let m = machine(
            "machine sh { reg a[8]; reg b[8]; reg c[8];
                state s { a := a + b; b := b + c; c := c + a; } }",
        );
        let shared = synthesize(
            &m,
            &SynthOptions {
                sharing: Sharing::Shared,
            },
        );
        let per_op = synthesize(
            &m,
            &SynthOptions {
                sharing: Sharing::PerOperation,
            },
        );
        assert_eq!(per_op.estimate.count_by_kind["adder"], 3);
        assert_eq!(shared.estimate.count_by_kind["adder"], 1);
        // In MSI packages a steering mux costs as much as the adders it
        // saves (74157 vs 74283 are both one package per 4 bits), so
        // sharing only ties on chip count — but wins clearly on silicon
        // area, and pays a mux delay. That is exactly the space/speed
        // trade experiment E5 charts.
        assert!(shared.estimate.packages <= per_op.estimate.packages);
        assert!(shared.estimate.area_lambda2 < per_op.estimate.area_lambda2);
        assert!(shared.estimate.cycle_ns >= per_op.estimate.cycle_ns);
    }

    #[test]
    fn control_terms_follow_branching() {
        let flat = machine("machine f { reg a[4]; state s { a := a + 1; } }");
        let branchy = machine(
            "machine b { reg a[4];
                state s {
                    if a == 0 { a := 1; } else if a == 1 { a := 2; } else { a := 3; }
                } }",
        );
        let fa = synthesize(&flat, &SynthOptions::default());
        let ba = synthesize(&branchy, &SynthOptions::default());
        assert!(
            ba.control.3 > fa.control.3,
            "{:?} vs {:?}",
            ba.control,
            fa.control
        );
    }

    #[test]
    fn state_bits_scale() {
        let m = machine(
            "machine st { reg a[4];
                state s0 { goto s1; } state s1 { goto s2; } state s2 { goto s3; }
                state s3 { goto s4; } state s4 { goto s0; } }",
        );
        let alloc = synthesize(&m, &SynthOptions::default());
        assert_eq!(alloc.control.0, 3); // 5 states -> 3 bits
    }

    #[test]
    fn memory_dominates_cycle_time() {
        let m = machine(
            "machine mm { reg a[8]; reg d[8]; mem ram[1024][8];
                state s { d := ram[a]; } }",
        );
        let alloc = synthesize(&m, &SynthOptions::default());
        assert!(alloc.estimate.cycle_ns > 450);
    }

    #[test]
    fn netlist_wires_register_to_mux() {
        let m = machine(
            "machine nw { reg a[8]; reg b[8];
                state s { if b == 0 { a := b; } else { a := a + b; } } }",
        );
        let alloc = synthesize(&m, &SynthOptions::default());
        let reg = alloc.netlist.instance_by_name("reg_a").unwrap();
        let mux = alloc.netlist.instance_by_name("mux_a").unwrap();
        let d_net = alloc.netlist.net_by_name("d_a").unwrap();
        let reg_inst = &alloc.netlist.instances()[reg.raw() as usize];
        let mux_inst = &alloc.netlist.instances()[mux.raw() as usize];
        assert!(reg_inst
            .connections
            .iter()
            .any(|(p, nid)| p == "d" && *nid == d_net));
        assert!(mux_inst
            .connections
            .iter()
            .any(|(p, nid)| p == "y" && *nid == d_net));
    }

    #[test]
    fn identical_transfers_share_a_source() {
        let m = machine(
            "machine dup { reg a[8]; reg b[8];
                state s0 { a := b; goto s1; }
                state s1 { a := b; goto s0; } }",
        );
        let alloc = synthesize(&m, &SynthOptions::default());
        // a := b twice is one source: no mux needed.
        assert!(!alloc.estimate.count_by_kind.contains_key("mux"));
    }
}
