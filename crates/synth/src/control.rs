//! Control-store generation: the exact personality matrix of a
//! behavioral machine's control unit.
//!
//! [`synthesize`](crate::synthesize) *estimates* the control PLA's shape;
//! this module derives the **actual truth table** — one product term per
//! condition path through each state's body — so the control unit can be
//! programmed into a real PLA (`silc-pla`), laid out, design-rule checked
//! and extracted like any other regular block. This is the bridge between
//! the paper's two definitions: the behavioral compiler's control section
//! *is* a programmed regular block.

use silc_logic::{Cube, Lit, OutBit, TruthTable};
use silc_rtl::{Expr, Machine, Stmt, Target};
use std::collections::BTreeSet;
use std::fmt;

/// The control store of a machine: a truth table whose inputs are the
/// state code plus one bit per distinct condition expression, and whose
/// outputs are the next-state code, one load enable per written signal,
/// one write enable per memory, and a halt line.
#[derive(Debug, Clone)]
pub struct ControlTable {
    /// The personality (program it into a PLA with `silc-pla`).
    pub table: TruthTable,
    /// Number of state-code input bits (the first inputs).
    pub state_bits: u32,
    /// For each condition input `c<i>`, the source text of the condition
    /// it samples.
    pub condition_legend: Vec<String>,
    /// Names of the controlled signals, in output order after the
    /// next-state bits: `ld_*` load enables, `we_*` memory write enables,
    /// then `halt`.
    pub control_legend: Vec<String>,
}

impl fmt::Display for ControlTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "control store: {} inputs ({} state bits + {} conditions), {} outputs, {} terms",
            self.table.num_inputs(),
            self.state_bits,
            self.condition_legend.len(),
            self.table.num_outputs(),
            self.table.rows().len()
        )?;
        for (i, c) in self.condition_legend.iter().enumerate() {
            writeln!(f, "  c{i} = {c}")?;
        }
        Ok(())
    }
}

/// One leaf path through a state body: the condition decisions taken and
/// the effects reached.
#[derive(Debug, Clone, Default)]
struct PathInfo {
    conds: Vec<(usize, bool)>,
    loads: BTreeSet<String>,
    mem_writes: BTreeSet<String>,
    next: Option<usize>,
    halt: bool,
}

/// Derives the control store of `machine`.
///
/// Every `if` condition becomes one PLA input (duplicate expressions
/// share a bit); every leaf path of every state becomes one product
/// term. Paths that require a condition to be both true and false are
/// contradictions and are dropped. Terms that drive nothing (stay in the
/// same state, load nothing, no halt) are omitted — PLA rows exist to
/// assert outputs.
///
/// # Example
///
/// ```
/// use silc_rtl::parse;
/// use silc_synth::control_table;
/// let m = parse("machine m { reg a[4];
///     state s0 { if a == 0 { goto s1; } }
///     state s1 { a := a + 1; goto s0; } }")?;
/// let cs = control_table(&m);
/// assert_eq!(cs.state_bits, 1);
/// assert_eq!(cs.condition_legend.len(), 1);
/// # Ok::<(), silc_rtl::RtlError>(())
/// ```
pub fn control_table(machine: &Machine) -> ControlTable {
    // Collect distinct conditions (stable first-seen order).
    let mut conditions: Vec<Expr> = Vec::new();
    for state in &machine.states {
        collect_conditions(&state.body, &mut conditions);
    }

    // Collect controlled signals.
    let mut loads: BTreeSet<String> = BTreeSet::new();
    let mut mems: BTreeSet<String> = BTreeSet::new();
    for state in &machine.states {
        collect_targets(&state.body, &mut loads, &mut mems);
    }
    let load_names: Vec<String> = loads.iter().map(|n| format!("ld_{n}")).collect();
    let mem_names: Vec<String> = mems.iter().map(|n| format!("we_{n}")).collect();

    let state_bits = (usize::BITS - (machine.states.len().max(1) - 1).leading_zeros()).max(1);
    let n_inputs = state_bits as usize + conditions.len();
    let n_outputs = state_bits as usize + load_names.len() + mem_names.len() + 1;

    let mut input_names: Vec<String> = (0..state_bits).rev().map(|b| format!("s{b}")).collect();
    input_names.extend((0..conditions.len()).map(|i| format!("c{i}")));
    let mut output_names: Vec<String> = (0..state_bits).rev().map(|b| format!("ns{b}")).collect();
    output_names.extend(load_names.iter().cloned());
    output_names.extend(mem_names.iter().cloned());
    output_names.push("halt".to_string());

    let mut table = TruthTable::new(n_inputs, n_outputs).with_names(
        &input_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &output_names.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    for (si, state) in machine.states.iter().enumerate() {
        for path in enumerate_paths(&state.body, &conditions, machine) {
            let next = path.next.unwrap_or(si);
            // Build the input cube: exact state code, then path
            // conditions.
            let mut lits = Vec::with_capacity(n_inputs);
            for b in (0..state_bits).rev() {
                lits.push(if (si >> b) & 1 == 1 {
                    Lit::One
                } else {
                    Lit::Zero
                });
            }
            let mut cond_lits = vec![Lit::DontCare; conditions.len()];
            for &(ci, v) in &path.conds {
                cond_lits[ci] = if v { Lit::One } else { Lit::Zero };
            }
            lits.extend(cond_lits);

            // Outputs.
            let mut outs = Vec::with_capacity(n_outputs);
            for b in (0..state_bits).rev() {
                outs.push(if (next >> b) & 1 == 1 {
                    OutBit::On
                } else {
                    OutBit::Off
                });
            }
            for name in &loads {
                outs.push(if path.loads.contains(name) {
                    OutBit::On
                } else {
                    OutBit::Off
                });
            }
            for name in &mems {
                outs.push(if path.mem_writes.contains(name) {
                    OutBit::On
                } else {
                    OutBit::Off
                });
            }
            outs.push(if path.halt { OutBit::On } else { OutBit::Off });

            // Omit rows that assert nothing.
            if outs.iter().all(|&o| o == OutBit::Off) {
                continue;
            }
            table
                .push_row(Cube::from_lits(lits), outs)
                .expect("widths are consistent");
        }
    }

    ControlTable {
        table,
        state_bits,
        condition_legend: conditions.iter().map(expr_text).collect(),
        control_legend: load_names
            .into_iter()
            .chain(mem_names)
            .chain(["halt".to_string()])
            .collect(),
    }
}

/// The raw condition expressions, in the same order as
/// [`ControlTable::condition_legend`] — for driving cross-checks with
/// [`silc_rtl::Simulator::eval_expr`].
pub fn control_conditions(machine: &Machine) -> Vec<Expr> {
    let mut conditions = Vec::new();
    for state in &machine.states {
        collect_conditions(&state.body, &mut conditions);
    }
    conditions
}

fn collect_conditions(body: &[Stmt], out: &mut Vec<Expr>) {
    for stmt in body {
        if let Stmt::If {
            cond,
            then_body,
            else_body,
        } = stmt
        {
            if !out.contains(cond) {
                out.push(cond.clone());
            }
            collect_conditions(then_body, out);
            collect_conditions(else_body, out);
        }
    }
}

fn collect_targets(body: &[Stmt], loads: &mut BTreeSet<String>, mems: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { target, .. } => match target {
                Target::Signal { name, .. } => {
                    loads.insert(name.clone());
                }
                Target::MemWord { name, .. } => {
                    mems.insert(name.clone());
                }
            },
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_targets(then_body, loads, mems);
                collect_targets(else_body, loads, mems);
            }
            Stmt::Goto(_) | Stmt::Halt => {}
        }
    }
}

/// Enumerates the leaf paths of a statement list. Sequential composition
/// forks at every `if`, and each fork continues through the rest of the
/// list; contradictory repeats of one condition on a path are dropped.
fn enumerate_paths(body: &[Stmt], conditions: &[Expr], machine: &Machine) -> Vec<PathInfo> {
    fn go(
        body: &[Stmt],
        conditions: &[Expr],
        machine: &Machine,
        start: Vec<PathInfo>,
    ) -> Vec<PathInfo> {
        let mut paths = start;
        for stmt in body {
            match stmt {
                Stmt::Assign { target, .. } => {
                    for p in &mut paths {
                        match target {
                            Target::Signal { name, .. } => {
                                p.loads.insert(name.clone());
                            }
                            Target::MemWord { name, .. } => {
                                p.mem_writes.insert(name.clone());
                            }
                        }
                    }
                }
                Stmt::Goto(name) => {
                    let idx = machine.state_index(name).expect("validated by parser");
                    for p in &mut paths {
                        p.next = Some(idx);
                    }
                }
                Stmt::Halt => {
                    for p in &mut paths {
                        p.halt = true;
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let ci = conditions
                        .iter()
                        .position(|c| c == cond)
                        .expect("collected above");
                    let mut next_paths = Vec::new();
                    for p in paths {
                        for (branch, value) in [(then_body, true), (else_body, false)] {
                            if p.conds.iter().any(|&(i, v)| i == ci && v != value) {
                                continue; // contradiction: impossible path
                            }
                            let mut forked = p.clone();
                            if !forked.conds.iter().any(|&(i, _)| i == ci) {
                                forked.conds.push((ci, value));
                            }
                            next_paths.extend(go(branch, conditions, machine, vec![forked]));
                        }
                    }
                    paths = next_paths;
                }
            }
        }
        paths
    }
    go(body, conditions, machine, vec![PathInfo::default()])
}

/// Formats an ISL expression as source text (for condition legends).
pub fn expr_text(e: &Expr) -> String {
    use silc_rtl::{BinaryOp, UnaryOp};
    match e {
        Expr::Const { value, width } => match width {
            Some(w) => format!("{w}'d{value}"),
            None => value.to_string(),
        },
        Expr::Ident(name) => name.clone(),
        Expr::Slice { base, hi, lo } => {
            if hi == lo {
                format!("{}[{hi}]", expr_text(base))
            } else {
                format!("{}[{hi}:{lo}]", expr_text(base))
            }
        }
        Expr::MemRead { name, addr } => format!("{name}[{}]", expr_text(addr)),
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnaryOp::Not => "~",
                UnaryOp::Neg => "-",
                UnaryOp::LogicalNot => "!",
            };
            format!("{sym}({})", expr_text(expr))
        }
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinaryOp::LogicalOr => "||",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::And => "&",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
            };
            format!("({} {sym} {})", expr_text(lhs), expr_text(rhs))
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(expr_text).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_rtl::{parse, Simulator};

    #[test]
    fn ping_pong_table() {
        let m = parse(
            "machine pp { reg a[4]; port input go[1];
                state idle { if go == 1 { a := 0; goto busy; } }
                state busy { a := a + 1; goto idle; } }",
        )
        .unwrap();
        let cs = control_table(&m);
        assert_eq!(cs.state_bits, 1);
        assert_eq!(cs.condition_legend, vec!["(go == 1)"]);
        assert_eq!(cs.control_legend, vec!["ld_a", "halt"]);
        // Rows: idle+go -> busy with ld_a; busy -> idle with ld_a.
        // (idle without go asserts nothing and is omitted; state 0's code
        // is all zeros so the omission is exact.)
        assert_eq!(cs.table.rows().len(), 2);
        // idle (s=0), go=1: ns=1, ld_a=1.
        assert_eq!(cs.table.eval(0, 0b01).unwrap(), Some(true)); // ns0
        assert_eq!(cs.table.eval(1, 0b01).unwrap(), Some(true)); // ld_a
                                                                 // idle, go=0: nothing asserted.
        assert_eq!(cs.table.eval(0, 0b00).unwrap(), Some(false));
        // busy (s=1), go irrelevant: ns=0, ld_a=1.
        assert_eq!(cs.table.eval(0, 0b10).unwrap(), Some(false));
        assert_eq!(cs.table.eval(1, 0b10).unwrap(), Some(true));
    }

    #[test]
    fn halting_path_asserts_halt() {
        let m = parse(
            "machine h { reg a[4];
                state s0 { if a == 7 { halt; } else { a := a + 1; } } }",
        )
        .unwrap();
        let cs = control_table(&m);
        let halt_output = cs.table.num_outputs() - 1;
        // s0, cond true: halt asserted.
        assert_eq!(cs.table.eval(halt_output, 0b01).unwrap(), Some(true));
        assert_eq!(cs.table.eval(halt_output, 0b00).unwrap(), Some(false));
    }

    #[test]
    fn contradictory_nested_condition_paths_dropped() {
        let m = parse(
            "machine c { reg a[4];
                state s {
                    if a == 0 {
                        if a == 0 { a := 1; } else { a := 2; }
                    }
                } }",
        )
        .unwrap();
        let cs = control_table(&m);
        // Only the consistent (true,true) path loads a; the (true,false)
        // fork is a contradiction. One condition input, one row.
        assert_eq!(cs.condition_legend.len(), 1);
        assert_eq!(cs.table.rows().len(), 1);
    }

    /// Replays a simulation and checks the control store predicts every
    /// state transition and halt decision the simulator makes.
    fn cross_check(source: &str, drive: impl Fn(&mut Simulator, u64), cycles: u64) {
        let m = parse(source).unwrap();
        let cs = control_table(&m);
        let conditions = control_conditions(&m);
        let mut sim = Simulator::new(&m);
        for cycle in 0..cycles {
            drive(&mut sim, cycle);
            if sim.is_halted() {
                break;
            }
            let state = m.state_index(sim.state_name()).unwrap() as u64;
            // Build the control-store minterm: state code then conditions.
            let nc = conditions.len();
            let mut minterm = state << nc;
            for (i, cond) in conditions.iter().enumerate() {
                let v = sim.eval_expr(cond).unwrap();
                if v != 0 {
                    minterm |= 1 << (nc - 1 - i);
                }
            }
            // Predicted next state from the ns outputs.
            let mut predicted = 0u64;
            for b in 0..cs.state_bits as usize {
                if cs.table.eval(b, minterm).unwrap() == Some(true) {
                    predicted |= 1 << (cs.state_bits as usize - 1 - b);
                }
            }
            let predicted_halt =
                cs.table.eval(cs.table.num_outputs() - 1, minterm).unwrap() == Some(true);
            sim.step().unwrap();
            let actual = m.state_index(sim.state_name()).unwrap() as u64;
            assert_eq!(predicted, actual, "cycle {cycle}: state prediction");
            assert_eq!(predicted_halt, sim.is_halted(), "cycle {cycle}: halt");
        }
    }

    #[test]
    fn sequencer_cross_check() {
        cross_check(
            "machine seq { port input go[1]; reg x[4];
                state idle { if go == 1 { goto work; } }
                state work { x := x + 1; if x == 7 { goto done; } }
                state done { halt; } }",
            |sim, cycle| {
                sim.set_input("go", u64::from(cycle >= 2)).unwrap();
            },
            40,
        );
    }

    #[test]
    fn expr_text_roundtrips_structure() {
        let m = parse("machine t { reg a[8]; state s { if (a[7] == 1) && !(a == 0) { halt; } } }")
            .unwrap();
        let cs = control_table(&m);
        assert_eq!(cs.condition_legend.len(), 1);
        assert!(cs.condition_legend[0].contains("a[7]"));
        assert!(cs.condition_legend[0].contains("&&"));
    }
}
