use crate::ModuleClass;
use std::collections::BTreeMap;
use std::fmt;

/// Cost roll-up of an allocation — the numbers the evaluation compares
/// (packages for E1, area and cycle time for E5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Estimate {
    /// Total MSI package count.
    pub packages: u64,
    /// Total equivalent nMOS macro area, λ².
    pub area_lambda2: u64,
    /// Estimated cycle time: worst-case register-to-register path.
    pub cycle_ns: u64,
    /// Package count per module kind, sorted by kind.
    pub packages_by_kind: BTreeMap<String, u64>,
    /// Instance count per module kind.
    pub count_by_kind: BTreeMap<String, usize>,
}

impl Estimate {
    /// Builds an estimate from allocated modules and the computed worst
    /// register-to-register combinational delay.
    pub fn from_modules(modules: &[ModuleClass], worst_path_ns: u64) -> Estimate {
        let mut packages = 0;
        let mut area = 0;
        let mut packages_by_kind: BTreeMap<String, u64> = BTreeMap::new();
        let mut count_by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for m in modules {
            packages += m.packages();
            area += m.area_lambda2();
            *packages_by_kind
                .entry(m.kind_name().to_string())
                .or_insert(0) += m.packages();
            *count_by_kind.entry(m.kind_name().to_string()).or_insert(0) += 1;
        }
        // A cycle: control PLA decides, datapath computes, register
        // captures.
        let control = modules
            .iter()
            .filter(|m| matches!(m, ModuleClass::ControlPla { .. }))
            .map(|m| m.delay_ns())
            .max()
            .unwrap_or(0);
        let setup = 15; // register clock-to-q + setup
        Estimate {
            packages,
            area_lambda2: area,
            cycle_ns: control + worst_path_ns + setup,
            packages_by_kind,
            count_by_kind,
        }
    }

    /// Ratio of this estimate's package count to a baseline count — the
    /// paper's "within 50%" is `ratio() <= 1.5`.
    pub fn package_ratio(&self, baseline_packages: u64) -> f64 {
        self.packages as f64 / baseline_packages.max(1) as f64
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} packages, {} lambda^2, {} ns cycle",
            self.packages, self.area_lambda2, self.cycle_ns
        )?;
        for (kind, pkgs) in &self.packages_by_kind {
            writeln!(
                f,
                "  {kind:<16} {:>3} x -> {pkgs:>4} pkg",
                self.count_by_kind[kind]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_sums() {
        let modules = vec![
            ModuleClass::Register { width: 8 },
            ModuleClass::Adder { width: 8 },
            ModuleClass::ControlPla {
                inputs: 4,
                outputs: 4,
                terms: 6,
            },
        ];
        let e = Estimate::from_modules(&modules, 36);
        assert_eq!(e.packages, 2 + 2 + 1);
        assert_eq!(e.cycle_ns, 50 + 36 + 15);
        assert_eq!(e.packages_by_kind["register"], 2);
        assert_eq!(e.count_by_kind["adder"], 1);
    }

    #[test]
    fn ratio() {
        let e = Estimate::from_modules(&[ModuleClass::Register { width: 40 }], 0);
        assert_eq!(e.packages, 10);
        assert!((e.package_ratio(8) - 1.25).abs() < 1e-9);
        assert!(e.package_ratio(0) >= 10.0); // guarded divide
    }

    #[test]
    fn display_lists_kinds() {
        let e = Estimate::from_modules(&[ModuleClass::Adder { width: 4 }], 10);
        let s = e.to_string();
        assert!(s.contains("adder"));
        assert!(s.contains("packages"));
    }
}
