use std::fmt;

/// A standard module the allocator can instantiate, with its parameters.
///
/// The cost model is calibrated to the MSI/TTL catalogue parts a 1978
/// module-set compiler (the paper's reference \[6\] used the CMU RT-CAD
/// module set) would have drawn from:
///
/// | class | catalogue part | packages |
/// |---|---|---|
/// | `Register(w)` | 74175 quad D flip-flop | ⌈w/4⌉ |
/// | `Adder(w)` | 74283 4-bit adder | ⌈w/4⌉ |
/// | `Incrementer(w)` | half-adder chain (2 per package of 4) | ⌈w/8⌉ |
/// | `BitLogic(w)` | 7400-family quad gate | ⌈w/4⌉ |
/// | `Shifter(w)` | 74157 mux row per position | ⌈w/4⌉ |
/// | `Comparator(w)` | 7485 4-bit comparator | ⌈w/4⌉ |
/// | `Mux(ways, w)` | 74157 quad 2:1 | (ways−1)·⌈w/4⌉ |
/// | `Decoder(n)` | 74138 3:8 | ⌈2ⁿ/8⌉ |
/// | `Memory(words, w)` | 2102 1K×1 static RAM | ⌈words/1024⌉·w |
/// | `ControlPla(i,o,t)` | 82S100 FPLA (16 in, 48 terms, 8 out) | ⌈t/48⌉·⌈o/8⌉·⌈i/16⌉ |
/// | `StateRegister(bits)` | 74175 | ⌈bits/4⌉ |
///
/// Area figures are in λ² for the equivalent nMOS macro (used when the
/// allocator targets silicon instead of packages); delays are nanoseconds
/// at the generous 1978 5 µm process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleClass {
    /// A `width`-bit register.
    Register {
        /// Bits stored.
        width: u32,
    },
    /// A `width`-bit ripple-carry adder/subtractor.
    Adder {
        /// Operand width.
        width: u32,
    },
    /// A `width`-bit +1 incrementer (cheaper than a full adder).
    Incrementer {
        /// Operand width.
        width: u32,
    },
    /// A `width`-bit bitwise logic unit (AND/OR/XOR/NOT).
    BitLogic {
        /// Operand width.
        width: u32,
    },
    /// A `width`-bit shifter (one position per cycle, as PDP-8-era
    /// hardware did).
    Shifter {
        /// Operand width.
        width: u32,
    },
    /// A `width`-bit magnitude/equality comparator.
    Comparator {
        /// Operand width.
        width: u32,
    },
    /// A `ways`-input multiplexer, `width` bits wide.
    Mux {
        /// Number of selectable sources (>= 2).
        ways: u32,
        /// Data width.
        width: u32,
    },
    /// An `inputs`-to-2^`inputs` decoder.
    Decoder {
        /// Select inputs.
        inputs: u32,
    },
    /// A `words` × `width` random-access memory.
    Memory {
        /// Word count.
        words: u64,
        /// Word width.
        width: u32,
    },
    /// The control PLA: `inputs` → `outputs` with `terms` product terms.
    ControlPla {
        /// Condition + state inputs.
        inputs: u32,
        /// Control outputs.
        outputs: u32,
        /// Product terms.
        terms: u32,
    },
    /// The state register of the control unit.
    StateRegister {
        /// State encoding bits.
        bits: u32,
    },
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

impl ModuleClass {
    /// MSI package count for this module (the unit of the paper's "chip
    /// count within 50%" claim).
    pub fn packages(&self) -> u64 {
        match *self {
            ModuleClass::Register { width } => ceil_div(width.into(), 4),
            ModuleClass::Adder { width } => ceil_div(width.into(), 4),
            ModuleClass::Incrementer { width } => ceil_div(width.into(), 8),
            ModuleClass::BitLogic { width } => ceil_div(width.into(), 4),
            ModuleClass::Shifter { width } => ceil_div(width.into(), 4),
            ModuleClass::Comparator { width } => ceil_div(width.into(), 4),
            ModuleClass::Mux { ways, width } => {
                u64::from(ways.saturating_sub(1)) * ceil_div(width.into(), 4)
            }
            ModuleClass::Decoder { inputs } => ceil_div(1 << inputs.min(20), 8),
            ModuleClass::Memory { words, width } => ceil_div(words, 1024).max(1) * u64::from(width),
            ModuleClass::ControlPla {
                inputs,
                outputs,
                terms,
            } => {
                ceil_div(terms.max(1).into(), 48)
                    * ceil_div(outputs.max(1).into(), 8)
                    * ceil_div(inputs.max(1).into(), 16)
            }
            ModuleClass::StateRegister { bits } => ceil_div(bits.max(1).into(), 4),
        }
    }

    /// Equivalent nMOS macro area in λ².
    pub fn area_lambda2(&self) -> u64 {
        match *self {
            // A static register bit macro is roughly 40×35 λ.
            ModuleClass::Register { width } | ModuleClass::StateRegister { bits: width } => {
                u64::from(width) * 1400
            }
            // A ripple adder bit (carry chain + sum) ~ 60×50 λ.
            ModuleClass::Adder { width } => u64::from(width) * 3000,
            ModuleClass::Incrementer { width } => u64::from(width) * 1200,
            ModuleClass::BitLogic { width } => u64::from(width) * 800,
            ModuleClass::Shifter { width } => u64::from(width) * 1000,
            ModuleClass::Comparator { width } => u64::from(width) * 1600,
            ModuleClass::Mux { ways, width } => {
                u64::from(ways.saturating_sub(1)) * u64::from(width) * 700
            }
            ModuleClass::Decoder { inputs } => (1u64 << inputs.min(20)) * 400,
            // 6-transistor static cell ~ 25×20 λ plus decode overhead.
            ModuleClass::Memory { words, width } => words * u64::from(width) * 500 + 20_000,
            // PLA area model mirrors silc-pla's plane dimensions.
            ModuleClass::ControlPla {
                inputs,
                outputs,
                terms,
            } => {
                let rows = u64::from(terms.max(1));
                (2 * u64::from(inputs) + u64::from(outputs)) * rows * 64 + 10_000
            }
        }
    }

    /// Propagation delay in nanoseconds (for the E5 speed comparison).
    pub fn delay_ns(&self) -> u64 {
        match *self {
            ModuleClass::Register { .. } | ModuleClass::StateRegister { .. } => 15,
            ModuleClass::Adder { width } => 20 + 2 * u64::from(width), // ripple carry
            ModuleClass::Incrementer { width } => 10 + u64::from(width),
            ModuleClass::BitLogic { .. } => 10,
            ModuleClass::Shifter { .. } => 15,
            ModuleClass::Comparator { width } => 15 + u64::from(width),
            ModuleClass::Mux { ways, .. } => 8 * u64::from(32 - ways.leading_zeros()),
            ModuleClass::Decoder { .. } => 20,
            ModuleClass::Memory { .. } => 450, // 2102-class access time
            ModuleClass::ControlPla { .. } => 50,
        }
    }

    /// The kind string used when emitting a netlist instance.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ModuleClass::Register { .. } => "register",
            ModuleClass::Adder { .. } => "adder",
            ModuleClass::Incrementer { .. } => "incrementer",
            ModuleClass::BitLogic { .. } => "bitlogic",
            ModuleClass::Shifter { .. } => "shifter",
            ModuleClass::Comparator { .. } => "comparator",
            ModuleClass::Mux { .. } => "mux",
            ModuleClass::Decoder { .. } => "decoder",
            ModuleClass::Memory { .. } => "memory",
            ModuleClass::ControlPla { .. } => "control_pla",
            ModuleClass::StateRegister { .. } => "state_register",
        }
    }
}

impl fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModuleClass::Register { width } => write!(f, "register[{width}]"),
            ModuleClass::Adder { width } => write!(f, "adder[{width}]"),
            ModuleClass::Incrementer { width } => write!(f, "incrementer[{width}]"),
            ModuleClass::BitLogic { width } => write!(f, "bitlogic[{width}]"),
            ModuleClass::Shifter { width } => write!(f, "shifter[{width}]"),
            ModuleClass::Comparator { width } => write!(f, "comparator[{width}]"),
            ModuleClass::Mux { ways, width } => write!(f, "mux{ways}[{width}]"),
            ModuleClass::Decoder { inputs } => write!(f, "decoder[{inputs}]"),
            ModuleClass::Memory { words, width } => write!(f, "memory[{words}x{width}]"),
            ModuleClass::ControlPla {
                inputs,
                outputs,
                terms,
            } => write!(f, "pla[{inputs}->{outputs},{terms}t]"),
            ModuleClass::StateRegister { bits } => write!(f, "state[{bits}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_counts_match_catalogue_math() {
        assert_eq!(ModuleClass::Register { width: 12 }.packages(), 3);
        assert_eq!(ModuleClass::Adder { width: 12 }.packages(), 3);
        assert_eq!(ModuleClass::Incrementer { width: 12 }.packages(), 2);
        assert_eq!(ModuleClass::Mux { ways: 4, width: 12 }.packages(), 9);
        assert_eq!(ModuleClass::Decoder { inputs: 3 }.packages(), 1);
        // 4K x 12 memory from 1K x 1 chips: 4 * 12 = 48 packages.
        assert_eq!(
            ModuleClass::Memory {
                words: 4096,
                width: 12
            }
            .packages(),
            48
        );
        assert_eq!(
            ModuleClass::ControlPla {
                inputs: 10,
                outputs: 16,
                terms: 30
            }
            .packages(),
            2
        );
    }

    #[test]
    fn wider_is_never_cheaper() {
        for w in 1..32u32 {
            assert!(
                ModuleClass::Adder { width: w + 1 }.packages()
                    >= ModuleClass::Adder { width: w }.packages()
            );
            assert!(
                ModuleClass::Register { width: w + 1 }.area_lambda2()
                    > ModuleClass::Register { width: w }.area_lambda2()
            );
            assert!(
                ModuleClass::Adder { width: w + 1 }.delay_ns()
                    > ModuleClass::Adder { width: w }.delay_ns()
            );
        }
    }

    #[test]
    fn incrementer_cheaper_than_adder() {
        for w in [4u32, 8, 12, 16] {
            assert!(
                ModuleClass::Incrementer { width: w }.packages()
                    <= ModuleClass::Adder { width: w }.packages()
            );
            assert!(
                ModuleClass::Incrementer { width: w }.area_lambda2()
                    < ModuleClass::Adder { width: w }.area_lambda2()
            );
        }
    }

    #[test]
    fn memory_dominates_delay() {
        assert!(
            ModuleClass::Memory {
                words: 4096,
                width: 12
            }
            .delay_ns()
                > ModuleClass::Adder { width: 12 }.delay_ns()
        );
    }

    #[test]
    fn display_and_kind_names() {
        let m = ModuleClass::Mux { ways: 3, width: 8 };
        assert_eq!(m.to_string(), "mux3[8]");
        assert_eq!(m.kind_name(), "mux");
    }
}
