use silc_geom::Coord;
use std::error::Error;
use std::fmt;

/// Error produced by the routers and the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// River routing needs the same number of terminals on both sides.
    TerminalCountMismatch {
        /// Terminals on the bottom edge.
        bottom: usize,
        /// Terminals on the top edge.
        top: usize,
    },
    /// River routing needs terminals in strictly increasing order with at
    /// least one pitch of separation.
    TerminalsNotOrdered {
        /// Which side violates (`"bottom"` or `"top"`).
        side: &'static str,
        /// Index of the offending terminal.
        index: usize,
        /// Coordinate of the offending terminal.
        at: Coord,
        /// Coordinate of the terminal before it.
        prev: Coord,
        /// Minimum separation the router requires.
        pitch: Coord,
    },
    /// The channel router's vertical constraint graph has a cycle, which
    /// a dogleg-free router cannot resolve.
    VerticalConstraintCycle {
        /// Nets on the cycle.
        nets: Vec<u32>,
        /// The track being filled when no eligible net remained.
        track: usize,
    },
    /// A routing problem with no terminals at all — the caller built a
    /// channel for zero nets, which is a construction bug, not a route.
    EmptyChannel,
    /// Assembly could not match a port between two facing edges.
    PortMismatch {
        /// The unmatched port name.
        port: String,
    },
    /// The layout database rejected generated geometry.
    Layout(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TerminalCountMismatch { bottom, top } => {
                write!(
                    f,
                    "river channel has {bottom} bottom vs {top} top terminals"
                )
            }
            RouteError::TerminalsNotOrdered {
                side,
                index,
                at,
                prev,
                pitch,
            } => {
                write!(
                    f,
                    "{side} terminal {index} at x={at} is out of order or too close \
                     (previous terminal at x={prev}, pitch {pitch})"
                )
            }
            RouteError::VerticalConstraintCycle { nets, track } => {
                write!(
                    f,
                    "vertical constraint cycle through nets {nets:?} while filling track {track}"
                )
            }
            RouteError::EmptyChannel => write!(f, "routing problem has no terminals"),
            RouteError::PortMismatch { port } => {
                write!(f, "port `{port}` has no partner on the facing edge")
            }
            RouteError::Layout(m) => write!(f, "layout construction failed: {m}"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = RouteError::VerticalConstraintCycle {
            nets: vec![3, 7],
            track: 2,
        };
        assert!(e.to_string().contains('3'));
        let e = RouteError::PortMismatch { port: "clk".into() };
        assert!(e.to_string().contains("clk"));
    }

    #[test]
    fn cycle_message_names_nets_and_track() {
        // Regression: the message used to stop at the net list; the
        // track tells which fill round got stuck.
        let e = RouteError::VerticalConstraintCycle {
            nets: vec![3, 7],
            track: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("[3, 7]"), "{msg}");
        assert!(msg.contains("track 2"), "{msg}");
    }

    #[test]
    fn unordered_message_names_coordinates_and_pitch() {
        // Regression: "terminal 2 is out of order" gave no way to find
        // the offending terminal in a wide channel.
        let e = RouteError::TerminalsNotOrdered {
            side: "bottom",
            index: 2,
            at: 5,
            prev: 10,
            pitch: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("bottom terminal 2"), "{msg}");
        assert!(msg.contains("x=5"), "{msg}");
        assert!(msg.contains("x=10"), "{msg}");
        assert!(msg.contains("pitch 4"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
    }
}
