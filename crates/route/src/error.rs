use std::error::Error;
use std::fmt;

/// Error produced by the routers and the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// River routing needs the same number of terminals on both sides.
    TerminalCountMismatch {
        /// Terminals on the bottom edge.
        bottom: usize,
        /// Terminals on the top edge.
        top: usize,
    },
    /// River routing needs terminals in strictly increasing order with at
    /// least one pitch of separation.
    TerminalsNotOrdered {
        /// Which side violates (`"bottom"` or `"top"`).
        side: &'static str,
        /// Index of the offending terminal.
        index: usize,
    },
    /// The channel router's vertical constraint graph has a cycle, which
    /// a dogleg-free router cannot resolve.
    VerticalConstraintCycle {
        /// Nets on the cycle.
        nets: Vec<u32>,
    },
    /// A routing problem with no terminals at all — the caller built a
    /// channel for zero nets, which is a construction bug, not a route.
    EmptyChannel,
    /// Assembly could not match a port between two facing edges.
    PortMismatch {
        /// The unmatched port name.
        port: String,
    },
    /// The layout database rejected generated geometry.
    Layout(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TerminalCountMismatch { bottom, top } => {
                write!(
                    f,
                    "river channel has {bottom} bottom vs {top} top terminals"
                )
            }
            RouteError::TerminalsNotOrdered { side, index } => {
                write!(f, "{side} terminal {index} is out of order or too close")
            }
            RouteError::VerticalConstraintCycle { nets } => {
                write!(f, "vertical constraint cycle through nets {nets:?}")
            }
            RouteError::EmptyChannel => write!(f, "routing problem has no terminals"),
            RouteError::PortMismatch { port } => {
                write!(f, "port `{port}` has no partner on the facing edge")
            }
            RouteError::Layout(m) => write!(f, "layout construction failed: {m}"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = RouteError::VerticalConstraintCycle { nets: vec![3, 7] };
        assert!(e.to_string().contains('3'));
        let e = RouteError::PortMismatch { port: "clk".into() };
        assert!(e.to_string().contains("clk"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
    }
}
