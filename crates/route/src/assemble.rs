use crate::{channel_route, river_route, ChannelProblem, RouteError};
use silc_geom::{Coord, Path, Point, Transform};
use silc_layout::{Cell, CellId, CellStats, Element, Instance, Layer, Library, Port};

/// One element of a vertical assembly stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// The cell to place.
    pub cell: CellId,
    /// Horizontal offset applied to the cell (for aligning port columns).
    pub dx: Coord,
}

impl Slice {
    /// A slice at horizontal offset zero.
    pub fn new(cell: CellId) -> Slice {
        Slice { cell, dx: 0 }
    }
}

/// Measurements of an assembly — the numbers experiment E3 sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Assembled bounding-box width in lambda.
    pub width: Coord,
    /// Assembled bounding-box height in lambda.
    pub height: Coord,
    /// Total routed wire length in lambda.
    pub wire_length: Coord,
    /// Tracks used by each inter-slice channel, bottom to top.
    pub channel_tracks: Vec<usize>,
    /// Signals connected in each channel.
    pub nets_per_channel: Vec<usize>,
}

/// Stacks `slices` bottom-to-top, routing each gap between the lower
/// cell's top-edge ports and the upper cell's bottom-edge ports (matched
/// by name). Port edges are determined from each cell's bounding box: a
/// port on the top edge of the lower cell faces the channel, likewise the
/// bottom edge of the upper cell.
///
/// If the matched ports appear in the same left-to-right order on both
/// sides, the gap is **river-routed** on `wire_layer` (single layer,
/// abutment style); otherwise the **channel router** is used (trunks on
/// `wire_layer`, branches too — a single-layer simplification of the
/// two-layer channel).
///
/// Returns the assembled cell and its statistics.
///
/// # Errors
///
/// * Router errors propagate ([`RouteError::VerticalConstraintCycle`],
///   terminal ordering);
/// * [`RouteError::Layout`] when the assembled cell cannot be added.
pub fn stack_assemble(
    lib: &mut Library,
    slices: &[Slice],
    wire_layer: Layer,
    wire_width: Coord,
    pitch: Coord,
    name: &str,
) -> Result<(CellId, AssemblyStats), RouteError> {
    stack_assemble_traced(
        lib,
        slices,
        wire_layer,
        wire_width,
        pitch,
        name,
        &silc_trace::Tracer::disabled(),
    )
}

/// [`stack_assemble`] with a [`silc_trace::Tracer`]: records a
/// `route.assemble` span plus `route.channels`, `route.tracks` and
/// `route.wire_length` counters.
///
/// # Errors
///
/// Same as [`stack_assemble`].
#[allow(clippy::too_many_arguments)]
pub fn stack_assemble_traced(
    lib: &mut Library,
    slices: &[Slice],
    wire_layer: Layer,
    wire_width: Coord,
    pitch: Coord,
    name: &str,
    tracer: &silc_trace::Tracer,
) -> Result<(CellId, AssemblyStats), RouteError> {
    let _s = silc_trace::span!(tracer, "route.assemble");
    let (id, stats) = stack_assemble_impl(lib, slices, wire_layer, wire_width, pitch, name)?;
    tracer.add("route.channels", stats.channel_tracks.len() as u64);
    tracer.add(
        "route.tracks",
        stats.channel_tracks.iter().sum::<usize>() as u64,
    );
    tracer.add("route.wire_length", stats.wire_length.unsigned_abs());
    Ok((id, stats))
}

fn stack_assemble_impl(
    lib: &mut Library,
    slices: &[Slice],
    wire_layer: Layer,
    wire_width: Coord,
    pitch: Coord,
    name: &str,
) -> Result<(CellId, AssemblyStats), RouteError> {
    let mut assembled = Cell::new(name);
    let mut y_cursor: Coord = 0;
    let mut wire_length: Coord = 0;
    let mut channel_tracks: Vec<usize> = Vec::new();
    let mut nets_per_channel: Vec<usize> = Vec::new();

    // Per-slice geometry info.
    struct Placed {
        top_ports: Vec<(String, Coord)>, // (name, absolute x), sorted by x
        top_y: Coord,
        bottom_ports: Vec<(String, Coord)>,
        bottom_y: Coord,
        height: Coord,
    }
    let mut infos: Vec<Placed> = Vec::new();
    for slice in slices {
        let stats =
            CellStats::compute(lib, slice.cell).map_err(|e| RouteError::Layout(e.to_string()))?;
        let bbox = stats
            .bbox
            .ok_or_else(|| RouteError::Layout("cannot stack an empty cell".into()))?;
        let cell = lib.cell(slice.cell).expect("stats computed");
        let mut top_ports: Vec<(String, Coord)> = cell
            .ports()
            .iter()
            .filter(|p| p.at.y == bbox.top())
            .map(|p| (p.name.clone(), p.at.x + slice.dx))
            .collect();
        top_ports.sort_by_key(|&(_, x)| x);
        let mut bottom_ports: Vec<(String, Coord)> = cell
            .ports()
            .iter()
            .filter(|p| p.at.y == bbox.bottom())
            .map(|p| (p.name.clone(), p.at.x + slice.dx))
            .collect();
        bottom_ports.sort_by_key(|&(_, x)| x);
        infos.push(Placed {
            top_ports,
            top_y: bbox.top(),
            bottom_ports,
            bottom_y: bbox.bottom(),
            height: bbox.height(),
        });
    }

    for (i, slice) in slices.iter().enumerate() {
        // Place this slice so its bbox bottom sits at y_cursor.
        let offset_y = y_cursor - infos[i].bottom_y;
        assembled.push_instance(Instance::place(
            slice.cell,
            Transform::translate(Point::new(slice.dx, offset_y)),
        ));
        y_cursor += infos[i].height;

        // Route to the next slice, if any.
        if i + 1 < slices.len() {
            let lower = &infos[i];
            let upper = &infos[i + 1];
            // Match by name.
            let matched: Vec<(&str, Coord, Coord)> = lower
                .top_ports
                .iter()
                .filter_map(|(n, x)| {
                    upper
                        .bottom_ports
                        .iter()
                        .find(|(un, _)| un == n)
                        .map(|(_, ux)| (n.as_str(), *x, *ux))
                })
                .collect();
            nets_per_channel.push(matched.len());

            let channel_y = y_cursor - infos[i].top_y + lower.top_y; // == y_cursor
            let bottom_xs: Vec<Coord> = matched.iter().map(|&(_, x, _)| x).collect();
            let top_xs: Vec<Coord> = matched.iter().map(|&(_, _, x)| x).collect();

            // Same order on both sides? Then river-route.
            let mut sorted_top = top_xs.clone();
            sorted_top.sort_unstable();
            let same_order = sorted_top == top_xs;
            let (paths, tracks, height): (Vec<Vec<Point>>, usize, Coord) = if matched.is_empty() {
                // Nothing to connect: leave one pitch of clearance between
                // the slices without invoking a router (an empty problem
                // is a `RouteError::EmptyChannel`).
                (Vec::new(), 0, pitch)
            } else if same_order {
                let r = river_route(&bottom_xs, &top_xs, pitch)?;
                wire_length += r.wire_length;
                (r.paths, r.tracks, r.height)
            } else {
                // Build a channel problem on a pitch grid.
                let min_x = bottom_xs.iter().chain(&top_xs).copied().min().unwrap_or(0);
                let max_x = bottom_xs.iter().chain(&top_xs).copied().max().unwrap_or(0);
                let cols = ((max_x - min_x) / pitch + 1) as usize;
                let mut top_row: Vec<Option<u32>> = vec![None; cols];
                let mut bottom_row: Vec<Option<u32>> = vec![None; cols];
                for (k, &(_, bx, tx)) in matched.iter().enumerate() {
                    let id = k as u32;
                    bottom_row[((bx - min_x) / pitch) as usize] = Some(id);
                    top_row[((tx - min_x) / pitch) as usize] = Some(id);
                }
                let r = channel_route(&ChannelProblem {
                    top: top_row,
                    bottom: bottom_row,
                    pitch,
                })?;
                wire_length += r.wire_length;
                let paths = r
                    .segments
                    .into_iter()
                    .map(|(_, pts)| {
                        pts.into_iter()
                            .map(|p| Point::new(p.x + min_x, p.y))
                            .collect()
                    })
                    .collect();
                (paths, r.tracks, r.height)
            };
            channel_tracks.push(tracks);

            // Emit the wires at the channel's absolute position.
            for path in paths {
                let pts: Vec<Point> = path
                    .iter()
                    .map(|p| Point::new(p.x, p.y + channel_y))
                    .collect();
                if pts.len() >= 2 && pts.first() != pts.last() {
                    let wire = Path::new(wire_width, pts)
                        .map_err(|e| RouteError::Layout(e.to_string()))?;
                    assembled.push_element(Element::new(wire_layer, wire));
                }
            }
            y_cursor += height;
        }
    }

    // Expose the unmatched outer ports (bottom of first slice, top of
    // last) on the assembled cell.
    if let Some(first) = infos.first() {
        for (n, x) in &first.bottom_ports {
            assembled.push_port(Port::new(n.clone(), wire_layer, Point::new(*x, 0)));
        }
    }
    if let Some(last) = infos.last() {
        for (n, x) in &last.top_ports {
            assembled.push_port(Port::new(n.clone(), wire_layer, Point::new(*x, y_cursor)));
        }
    }

    let id = lib
        .add_cell(assembled)
        .map_err(|e| RouteError::Layout(e.to_string()))?;
    let stats = CellStats::compute(lib, id).map_err(|e| RouteError::Layout(e.to_string()))?;
    let bbox = stats.bbox.expect("assembly has geometry");
    Ok((
        id,
        AssemblyStats {
            width: bbox.width(),
            height: bbox.height(),
            wire_length,
            channel_tracks,
            nets_per_channel,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Rect;
    use silc_layout::{Element, Layer};

    /// A test cell: a metal box with ports on top and bottom edges.
    fn block(
        lib: &mut Library,
        name: &str,
        width: Coord,
        height: Coord,
        bottom: &[(&str, Coord)],
        top: &[(&str, Coord)],
    ) -> CellId {
        let mut c = Cell::new(name);
        c.push_element(Element::rect(
            Layer::Metal,
            Rect::new(Point::new(0, 0), Point::new(width, height)).unwrap(),
        ));
        for &(n, x) in bottom {
            c.push_port(Port::new(n, Layer::Metal, Point::new(x, 0)));
        }
        for &(n, x) in top {
            c.push_port(Port::new(n, Layer::Metal, Point::new(x, height)));
        }
        lib.add_cell(c).unwrap()
    }

    #[test]
    fn straight_stack_connects() {
        let mut lib = Library::new();
        let a = block(&mut lib, "a", 40, 10, &[], &[("x", 10), ("y", 20)]);
        let b = block(&mut lib, "b", 40, 10, &[("x", 10), ("y", 20)], &[]);
        let (id, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert!(lib.cell(id).is_some());
        assert_eq!(stats.nets_per_channel, vec![2]);
        assert_eq!(stats.channel_tracks, vec![0]); // straight wires
        assert_eq!(stats.height, 10 + 6 + 10);
        assert!(stats.wire_length > 0);
    }

    #[test]
    fn shifted_ports_use_tracks() {
        let mut lib = Library::new();
        let a = block(
            &mut lib,
            "a",
            60,
            10,
            &[],
            &[("p", 6), ("q", 12), ("r", 18)],
        );
        let b = block(
            &mut lib,
            "b",
            60,
            10,
            &[("p", 36), ("q", 42), ("r", 48)],
            &[],
        );
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert!(stats.channel_tracks[0] >= 1);
        assert!(stats.height > 20);
    }

    #[test]
    fn crossed_ports_fall_back_to_channel_router() {
        let mut lib = Library::new();
        // Order changes between the edges (p before q below, q before p
        // above) without forming a vertical-constraint cycle: not
        // river-routable, but channel-routable.
        let a = block(&mut lib, "a", 60, 10, &[], &[("p", 6), ("q", 18)]);
        let b = block(&mut lib, "b", 60, 10, &[("p", 30), ("q", 6)], &[]);
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert_eq!(stats.nets_per_channel, vec![2]);
        assert!(stats.channel_tracks[0] >= 1);
    }

    #[test]
    fn unmatched_ports_are_ignored_but_exposed() {
        let mut lib = Library::new();
        let a = block(
            &mut lib,
            "a",
            40,
            10,
            &[("in", 8)],
            &[("x", 10), ("extra", 30)],
        );
        let b = block(&mut lib, "b", 40, 10, &[("x", 10)], &[("out", 20)]);
        let (id, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert_eq!(stats.nets_per_channel, vec![1]);
        let cell = lib.cell(id).unwrap();
        assert!(cell.port("in").is_some());
        assert!(cell.port("out").is_some());
    }

    #[test]
    fn three_slice_stack() {
        let mut lib = Library::new();
        let a = block(&mut lib, "a", 40, 8, &[], &[("s", 10)]);
        let b = block(&mut lib, "b", 40, 8, &[("s", 10)], &[("t", 14)]);
        let c = block(&mut lib, "c", 40, 8, &[("t", 22)], &[]);
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b), Slice::new(c)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert_eq!(stats.channel_tracks.len(), 2);
        assert_eq!(stats.nets_per_channel, vec![1, 1]);
    }

    #[test]
    fn slice_dx_aligns_columns() {
        let mut lib = Library::new();
        let a = block(&mut lib, "a", 40, 10, &[], &[("x", 30)]);
        let b = block(&mut lib, "b", 40, 10, &[("x", 10)], &[]);
        // Shift b right by 20 so the ports line up exactly.
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice { cell: b, dx: 20 }],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert_eq!(stats.channel_tracks, vec![0]);
    }

    #[test]
    fn portless_gap_leaves_one_pitch_without_routing() {
        let mut lib = Library::new();
        // No port name is shared between the facing edges: the gap has
        // nothing to route and must not be treated as a router problem.
        let a = block(&mut lib, "a", 40, 10, &[], &[("x", 10)]);
        let b = block(&mut lib, "b", 40, 10, &[("y", 10)], &[]);
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(a), Slice::new(b)],
            Layer::Metal,
            3,
            6,
            "asm",
        )
        .unwrap();
        assert_eq!(stats.nets_per_channel, vec![0]);
        assert_eq!(stats.channel_tracks, vec![0]);
        assert_eq!(stats.height, 10 + 6 + 10);
        assert_eq!(stats.wire_length, 0);
    }

    #[test]
    fn empty_cell_rejected() {
        let mut lib = Library::new();
        let empty = lib.add_cell(Cell::new("void")).unwrap();
        assert!(matches!(
            stack_assemble(&mut lib, &[Slice::new(empty)], Layer::Metal, 3, 6, "asm"),
            Err(RouteError::Layout(_))
        ));
    }
}
