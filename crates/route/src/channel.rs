use crate::RouteError;
use silc_geom::{Coord, Interval, IntervalSet, Point};
use std::collections::{BTreeMap, BTreeSet};

/// A channel routing problem: two facing rows of pins on a common column
/// grid. `top[c]` / `bottom[c]` give the net id at column `c`, with `0`
/// meaning no pin there. Net ids are otherwise arbitrary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProblem {
    /// Net ids along the top edge.
    pub top: Vec<u32>,
    /// Net ids along the bottom edge.
    pub bottom: Vec<u32>,
    /// Column pitch in lambda.
    pub pitch: Coord,
}

/// The result of channel routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelRoute {
    /// Track index (0 = nearest the top) per net id.
    pub track_of_net: BTreeMap<u32, usize>,
    /// Number of horizontal tracks used.
    pub tracks: usize,
    /// Channel height in lambda.
    pub height: Coord,
    /// Total wire length (trunks plus branches).
    pub wire_length: Coord,
    /// Centre-line polylines per net (trunk plus one branch per pin).
    pub segments: Vec<(u32, Vec<Point>)>,
}

/// Lower bound on any routing: the maximum number of distinct nets whose
/// horizontal spans cross a single column boundary.
pub fn channel_density(problem: &ChannelProblem) -> usize {
    let spans = net_spans(problem);
    let cols = problem.top.len().max(problem.bottom.len());
    let mut best = 0;
    for c in 0..cols {
        let crossing = spans
            .values()
            .filter(|&&(lo, hi)| lo <= c && c <= hi && lo != hi)
            .count();
        best = best.max(crossing);
    }
    // Columns where a net has both pins also occupy the channel.
    best.max(usize::from(spans.values().any(|&(lo, hi)| lo == hi)))
}

fn net_spans(problem: &ChannelProblem) -> BTreeMap<u32, (usize, usize)> {
    let mut spans: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for (c, &net) in problem.top.iter().enumerate() {
        if net != 0 {
            let e = spans.entry(net).or_insert((c, c));
            e.0 = e.0.min(c);
            e.1 = e.1.max(c);
        }
    }
    for (c, &net) in problem.bottom.iter().enumerate() {
        if net != 0 {
            let e = spans.entry(net).or_insert((c, c));
            e.0 = e.0.min(c);
            e.1 = e.1.max(c);
        }
    }
    spans
}

/// Routes a channel with the classic constrained left-edge algorithm:
///
/// 1. build the **vertical constraint graph** — at any column with both a
///    top pin and a bottom pin of different nets, the top net's trunk
///    must lie above the bottom net's;
/// 2. repeatedly fill tracks top-to-bottom: a net is eligible for the
///    current track when all nets that must be above it are already
///    placed; eligible nets pack left-to-right (left-edge greedy) without
///    span overlap.
///
/// Dogleg-free routing cannot break VCG cycles; those return
/// [`RouteError::VerticalConstraintCycle`], faithfully reproducing the
/// historical limitation.
///
/// # Errors
///
/// * [`RouteError::ReservedNetId`] — id 0 used as a real net;
/// * [`RouteError::VerticalConstraintCycle`] — see above.
///
/// # Example
///
/// ```
/// use silc_route::{channel_route, ChannelProblem};
/// let problem = ChannelProblem {
///     top:    vec![1, 2, 0, 3],
///     bottom: vec![0, 1, 2, 3],
///     pitch: 7,
/// };
/// let route = channel_route(&problem)?;
/// assert!(route.tracks >= 2);
/// # Ok::<(), silc_route::RouteError>(())
/// ```
pub fn channel_route(problem: &ChannelProblem) -> Result<ChannelRoute, RouteError> {
    let spans = net_spans(problem);
    let pitch = problem.pitch.max(1);
    if spans.is_empty() {
        return Ok(ChannelRoute {
            track_of_net: BTreeMap::new(),
            tracks: 0,
            height: pitch,
            wire_length: 0,
            segments: Vec::new(),
        });
    }

    // Vertical constraints: above -> below.
    let mut below: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new(); // net -> nets that must be below it
    let mut blockers: BTreeMap<u32, usize> = BTreeMap::new(); // net -> count of nets that must be above it
    for net in spans.keys() {
        below.entry(*net).or_default();
        blockers.entry(*net).or_insert(0);
    }
    let cols = problem.top.len().max(problem.bottom.len());
    for c in 0..cols {
        let t = problem.top.get(c).copied().unwrap_or(0);
        let b = problem.bottom.get(c).copied().unwrap_or(0);
        if t != 0 && b != 0 && t != b && below.get_mut(&t).expect("seen").insert(b) {
            *blockers.get_mut(&b).expect("seen") += 1;
        }
    }

    // Left-edge with VCG, tracks from the top.
    let mut track_of_net: BTreeMap<u32, usize> = BTreeMap::new();
    let mut placed: BTreeSet<u32> = BTreeSet::new();
    let mut track = 0usize;
    while placed.len() < spans.len() {
        // Eligible: unplaced nets with no unplaced net required above.
        let mut eligible: Vec<u32> = spans
            .keys()
            .filter(|n| !placed.contains(n) && blockers[n] == 0)
            .copied()
            .collect();
        if eligible.is_empty() {
            // Cycle: report the remaining nets.
            let nets: Vec<u32> = spans
                .keys()
                .filter(|n| !placed.contains(n))
                .copied()
                .collect();
            return Err(RouteError::VerticalConstraintCycle { nets });
        }
        // Left-edge: sort by left end, pack greedily without overlap.
        eligible.sort_by_key(|n| spans[n].0);
        let mut occupied = IntervalSet::new();
        let mut put_this_track: Vec<u32> = Vec::new();
        for net in eligible {
            let (lo, hi) = spans[&net];
            let iv = Interval::new(lo as Coord, hi as Coord).expect("lo <= hi");
            if !occupied.overlaps(iv) {
                occupied.insert(Interval::new(lo as Coord, (hi + 1) as Coord).expect("non-empty"));
                put_this_track.push(net);
            }
        }
        for net in put_this_track {
            track_of_net.insert(net, track);
            placed.insert(net);
            for &b in &below[&net] {
                if !placed.contains(&b) {
                    *blockers.get_mut(&b).expect("seen") -= 1;
                }
            }
        }
        track += 1;
    }

    let tracks = track;
    let height = (tracks as Coord + 1) * pitch;
    let track_y = |t: usize| height - (t as Coord + 1) * pitch;

    // Geometry and wire length.
    let mut segments: Vec<(u32, Vec<Point>)> = Vec::new();
    let mut wire_length = 0;
    for (&net, &(lo, hi)) in &spans {
        let y = track_y(track_of_net[&net]);
        let x0 = lo as Coord * pitch;
        let x1 = hi as Coord * pitch;
        if x1 > x0 {
            segments.push((net, vec![Point::new(x0, y), Point::new(x1, y)]));
            wire_length += x1 - x0;
        }
        for c in 0..cols {
            let x = c as Coord * pitch;
            if problem.top.get(c).copied().unwrap_or(0) == net {
                segments.push((net, vec![Point::new(x, y), Point::new(x, height)]));
                wire_length += height - y;
            }
            if problem.bottom.get(c).copied().unwrap_or(0) == net {
                segments.push((net, vec![Point::new(x, y), Point::new(x, 0)]));
                wire_length += y;
            }
        }
    }

    Ok(ChannelRoute {
        track_of_net,
        tracks,
        height,
        wire_length,
        segments,
    })
}

impl ChannelProblem {
    /// Validates that net ids avoid the reserved 0... this is implicit in
    /// the encoding (0 *is* the empty marker), so this helper only checks
    /// the grid is non-degenerate; it exists for symmetry with the other
    /// routers' validation.
    pub fn net_count(&self) -> usize {
        net_spans(self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_channel() {
        let p = ChannelProblem {
            top: vec![1, 0],
            bottom: vec![0, 1],
            pitch: 7,
        };
        let r = channel_route(&p).unwrap();
        assert_eq!(r.tracks, 1);
        assert_eq!(r.track_of_net[&1], 0);
    }

    #[test]
    fn independent_nets_share_a_track() {
        // Nets 1 and 2 occupy disjoint column ranges.
        let p = ChannelProblem {
            top: vec![1, 1, 0, 2, 2],
            bottom: vec![0, 0, 0, 0, 0],
            pitch: 7,
        };
        let r = channel_route(&p).unwrap();
        assert_eq!(r.tracks, 1);
        assert_eq!(r.track_of_net[&1], r.track_of_net[&2]);
    }

    #[test]
    fn overlapping_nets_stack() {
        let p = ChannelProblem {
            top: vec![1, 2, 0, 0],
            bottom: vec![0, 0, 1, 2],
            pitch: 7,
        };
        let r = channel_route(&p).unwrap();
        assert_eq!(r.tracks, 2);
    }

    #[test]
    fn vertical_constraints_respected() {
        // Column 1: top pin of net 2 above bottom pin of net 1 -> track(2)
        // above track(1).
        let p = ChannelProblem {
            top: vec![2, 2, 0],
            bottom: vec![0, 1, 1],
            pitch: 7,
        };
        let r = channel_route(&p).unwrap();
        assert!(r.track_of_net[&2] < r.track_of_net[&1]);
    }

    #[test]
    fn classic_cycle_detected() {
        // Net 1 above 2 at column 0; net 2 above 1 at column 1.
        let p = ChannelProblem {
            top: vec![1, 2],
            bottom: vec![2, 1],
            pitch: 7,
        };
        assert!(matches!(
            channel_route(&p),
            Err(RouteError::VerticalConstraintCycle { .. })
        ));
    }

    #[test]
    fn density_lower_bound_holds() {
        let p = ChannelProblem {
            top: vec![1, 2, 3, 0, 0, 0],
            bottom: vec![0, 0, 0, 1, 2, 3],
            pitch: 7,
        };
        let d = channel_density(&p);
        let r = channel_route(&p).unwrap();
        assert!(r.tracks >= d);
        assert_eq!(d, 3);
    }

    #[test]
    fn empty_channel() {
        let p = ChannelProblem {
            top: vec![0, 0],
            bottom: vec![0, 0],
            pitch: 7,
        };
        let r = channel_route(&p).unwrap();
        assert_eq!(r.tracks, 0);
        assert_eq!(p.net_count(), 0);
    }

    #[test]
    fn branches_reach_pins() {
        let p = ChannelProblem {
            top: vec![1, 0, 1],
            bottom: vec![0, 1, 0],
            pitch: 5,
        };
        let r = channel_route(&p).unwrap();
        // Trunk from column 0 to 2 plus three branches.
        let segs: Vec<_> = r.segments.iter().filter(|(n, _)| *n == 1).collect();
        assert_eq!(segs.len(), 4);
        // One branch reaches the bottom edge, two the top.
        let to_bottom = segs
            .iter()
            .filter(|(_, pts)| pts.iter().any(|p| p.y == 0))
            .count();
        assert_eq!(to_bottom, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn routed_channels_respect_constraints(
            top in prop::collection::vec(0u32..5, 2..14),
            bottom in prop::collection::vec(0u32..5, 2..14),
        ) {
            let p = ChannelProblem { top, bottom, pitch: 7 };
            match channel_route(&p) {
                Ok(r) => {
                    // Tracks at least density.
                    prop_assert!(r.tracks >= channel_density(&p)
                        || p.net_count() == 0);
                    // No two nets on one track overlap in span.
                    let spans = net_spans(&p);
                    for (a, &(alo, ahi)) in &spans {
                        for (b, &(blo, bhi)) in &spans {
                            if a < b && r.track_of_net[a] == r.track_of_net[b] {
                                prop_assert!(ahi < blo || bhi < alo,
                                    "nets {a} and {b} overlap on track");
                            }
                        }
                    }
                    // Vertical constraints hold.
                    let cols = p.top.len().max(p.bottom.len());
                    for c in 0..cols {
                        let t = p.top.get(c).copied().unwrap_or(0);
                        let b = p.bottom.get(c).copied().unwrap_or(0);
                        if t != 0 && b != 0 && t != b {
                            prop_assert!(r.track_of_net[&t] < r.track_of_net[&b]);
                        }
                    }
                }
                Err(RouteError::VerticalConstraintCycle { .. }) => {} // legal outcome
                Err(other) => return Err(TestCaseError::fail(other.to_string())),
            }
        }
    }
}
