use crate::RouteError;
use silc_geom::{Coord, Interval, IntervalSet, Point};
use std::collections::{BTreeMap, BTreeSet};

/// A net identifier in a channel problem. Any value is a legal net —
/// including 0. Emptiness is expressed with `Option<NetId>`, never with a
/// reserved sentinel value.
pub type NetId = u32;

/// A channel routing problem: two facing rows of pins on a common column
/// grid. `top[c]` / `bottom[c]` give the net at column `c`, with `None`
/// meaning no pin there. Net ids are otherwise arbitrary — net 0 is as
/// valid as any other (an earlier encoding reserved 0 as the "empty"
/// marker, which silently dropped legitimately-numbered nets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelProblem {
    /// Pins along the top edge (`None` = no pin at that column).
    pub top: Vec<Option<NetId>>,
    /// Pins along the bottom edge (`None` = no pin at that column).
    pub bottom: Vec<Option<NetId>>,
    /// Column pitch in lambda.
    pub pitch: Coord,
}

/// The result of channel routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelRoute {
    /// Track index (0 = nearest the top) per net id.
    pub track_of_net: BTreeMap<NetId, usize>,
    /// Number of horizontal tracks used.
    pub tracks: usize,
    /// Channel height in lambda.
    pub height: Coord,
    /// Total wire length (trunks plus branches).
    pub wire_length: Coord,
    /// Centre-line polylines per net (trunk plus one branch per pin).
    pub segments: Vec<(NetId, Vec<Point>)>,
}

/// Lower bound on any routing: the maximum number of distinct nets whose
/// horizontal spans cross a single column boundary.
pub fn channel_density(problem: &ChannelProblem) -> usize {
    let spans = net_spans(problem);
    let cols = problem.top.len().max(problem.bottom.len());
    let mut best = 0;
    for c in 0..cols {
        let crossing = spans
            .values()
            .filter(|&&(lo, hi)| lo <= c && c <= hi && lo != hi)
            .count();
        best = best.max(crossing);
    }
    // Columns where a net has both pins also occupy the channel.
    best.max(usize::from(spans.values().any(|&(lo, hi)| lo == hi)))
}

fn net_spans(problem: &ChannelProblem) -> BTreeMap<NetId, (usize, usize)> {
    let mut spans: BTreeMap<NetId, (usize, usize)> = BTreeMap::new();
    let mut note = |c: usize, pin: Option<NetId>| {
        if let Some(net) = pin {
            let e = spans.entry(net).or_insert((c, c));
            e.0 = e.0.min(c);
            e.1 = e.1.max(c);
        }
    };
    for (c, &pin) in problem.top.iter().enumerate() {
        note(c, pin);
    }
    for (c, &pin) in problem.bottom.iter().enumerate() {
        note(c, pin);
    }
    spans
}

/// The pin at column `c` of `row`, if any (`None` past the row's end).
fn pin(row: &[Option<NetId>], c: usize) -> Option<NetId> {
    row.get(c).copied().flatten()
}

/// Routes a channel with the classic constrained left-edge algorithm:
///
/// 1. build the **vertical constraint graph** — at any column with both a
///    top pin and a bottom pin of different nets, the top net's trunk
///    must lie above the bottom net's;
/// 2. repeatedly fill tracks top-to-bottom: a net is eligible for the
///    current track when all nets that must be above it are already
///    placed; eligible nets pack left-to-right (left-edge greedy) without
///    span overlap.
///
/// Dogleg-free routing cannot break VCG cycles; those return
/// [`RouteError::VerticalConstraintCycle`], faithfully reproducing the
/// historical limitation.
///
/// # Errors
///
/// * [`RouteError::VerticalConstraintCycle`] — see above.
///
/// # Example
///
/// ```
/// use silc_route::{channel_route, ChannelProblem};
/// let problem = ChannelProblem {
///     top:    vec![Some(1), Some(2), None, Some(3)],
///     bottom: vec![None, Some(1), Some(2), Some(3)],
///     pitch: 7,
/// };
/// let route = channel_route(&problem)?;
/// assert!(route.tracks >= 2);
/// # Ok::<(), silc_route::RouteError>(())
/// ```
pub fn channel_route(problem: &ChannelProblem) -> Result<ChannelRoute, RouteError> {
    let spans = net_spans(problem);
    let pitch = problem.pitch.max(1);
    if spans.is_empty() {
        return Ok(ChannelRoute {
            track_of_net: BTreeMap::new(),
            tracks: 0,
            height: pitch,
            wire_length: 0,
            segments: Vec::new(),
        });
    }

    // Vertical constraints: above -> below.
    let mut below: BTreeMap<NetId, BTreeSet<NetId>> = BTreeMap::new(); // net -> nets that must be below it
    let mut blockers: BTreeMap<NetId, usize> = BTreeMap::new(); // net -> count of nets that must be above it
    for net in spans.keys() {
        below.entry(*net).or_default();
        blockers.entry(*net).or_insert(0);
    }
    let cols = problem.top.len().max(problem.bottom.len());
    for c in 0..cols {
        if let (Some(t), Some(b)) = (pin(&problem.top, c), pin(&problem.bottom, c)) {
            if t != b && below.get_mut(&t).expect("seen").insert(b) {
                *blockers.get_mut(&b).expect("seen") += 1;
            }
        }
    }

    // Left-edge with VCG, tracks from the top.
    let mut track_of_net: BTreeMap<NetId, usize> = BTreeMap::new();
    let mut placed: BTreeSet<NetId> = BTreeSet::new();
    let mut track = 0usize;
    while placed.len() < spans.len() {
        // Eligible: unplaced nets with no unplaced net required above.
        let mut eligible: Vec<NetId> = spans
            .keys()
            .filter(|n| !placed.contains(n) && blockers[n] == 0)
            .copied()
            .collect();
        if eligible.is_empty() {
            // Cycle: report the remaining nets.
            let nets: Vec<NetId> = spans
                .keys()
                .filter(|n| !placed.contains(n))
                .copied()
                .collect();
            return Err(RouteError::VerticalConstraintCycle { nets, track });
        }
        // Left-edge: sort by left end, pack greedily without overlap.
        eligible.sort_by_key(|n| spans[n].0);
        let mut occupied = IntervalSet::new();
        let mut put_this_track: Vec<NetId> = Vec::new();
        for net in eligible {
            let (lo, hi) = spans[&net];
            let iv = Interval::new(lo as Coord, hi as Coord).expect("lo <= hi");
            if !occupied.overlaps(iv) {
                occupied.insert(Interval::new(lo as Coord, (hi + 1) as Coord).expect("non-empty"));
                put_this_track.push(net);
            }
        }
        for net in put_this_track {
            track_of_net.insert(net, track);
            placed.insert(net);
            for &b in &below[&net] {
                if !placed.contains(&b) {
                    *blockers.get_mut(&b).expect("seen") -= 1;
                }
            }
        }
        track += 1;
    }

    let tracks = track;
    let height = (tracks as Coord + 1) * pitch;
    let track_y = |t: usize| height - (t as Coord + 1) * pitch;

    // Geometry and wire length.
    let mut segments: Vec<(NetId, Vec<Point>)> = Vec::new();
    let mut wire_length = 0;
    for (&net, &(lo, hi)) in &spans {
        let y = track_y(track_of_net[&net]);
        let x0 = lo as Coord * pitch;
        let x1 = hi as Coord * pitch;
        if x1 > x0 {
            segments.push((net, vec![Point::new(x0, y), Point::new(x1, y)]));
            wire_length += x1 - x0;
        }
        for c in 0..cols {
            let x = c as Coord * pitch;
            if pin(&problem.top, c) == Some(net) {
                segments.push((net, vec![Point::new(x, y), Point::new(x, height)]));
                wire_length += height - y;
            }
            if pin(&problem.bottom, c) == Some(net) {
                segments.push((net, vec![Point::new(x, y), Point::new(x, 0)]));
                wire_length += y;
            }
        }
    }

    Ok(ChannelRoute {
        track_of_net,
        tracks,
        height,
        wire_length,
        segments,
    })
}

impl ChannelProblem {
    /// The number of distinct nets with at least one pin.
    pub fn net_count(&self) -> usize {
        net_spans(self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Test shorthand: build a pin row from integers, 0 = empty, n = net
    /// n-1 (so net id 0 is reachable through value 1).
    fn row(vals: &[u32]) -> Vec<Option<NetId>> {
        vals.iter()
            .map(|&v| if v == 0 { None } else { Some(v - 1) })
            .collect()
    }

    /// Convenience for tests written against 1-based net ids.
    fn p(top: &[u32], bottom: &[u32], pitch: Coord) -> ChannelProblem {
        ChannelProblem {
            top: top.iter().map(|&v| (v != 0).then_some(v)).collect(),
            bottom: bottom.iter().map(|&v| (v != 0).then_some(v)).collect(),
            pitch,
        }
    }

    #[test]
    fn trivial_channel() {
        let r = channel_route(&p(&[1, 0], &[0, 1], 7)).unwrap();
        assert_eq!(r.tracks, 1);
        assert_eq!(r.track_of_net[&1], 0);
    }

    #[test]
    fn net_zero_is_a_real_net() {
        // Regression: the old `Vec<u32>` encoding used 0 as the "empty"
        // sentinel, so a legitimate net numbered 0 was silently dropped
        // from the route. With explicit `Option` pins it must be routed
        // like any other net.
        let problem = ChannelProblem {
            top: vec![Some(0), None, Some(0)],
            bottom: vec![None, Some(0), None],
            pitch: 7,
        };
        assert_eq!(problem.net_count(), 1);
        let r = channel_route(&problem).unwrap();
        assert_eq!(r.tracks, 1);
        assert_eq!(r.track_of_net[&0], 0);
        // Trunk spanning columns 0..2 plus three branches.
        let segs: Vec<_> = r.segments.iter().filter(|(n, _)| *n == 0).collect();
        assert_eq!(segs.len(), 4);
        assert!(r.wire_length > 0);

        // Net 0 interacts with other nets through vertical constraints
        // exactly like any other id: top pin of net 0 above bottom pin of
        // net 5 forces track(0) above track(5).
        let problem = ChannelProblem {
            top: vec![Some(0), Some(0), None],
            bottom: vec![None, Some(5), Some(5)],
            pitch: 7,
        };
        let r = channel_route(&problem).unwrap();
        assert!(r.track_of_net[&0] < r.track_of_net[&5]);
    }

    #[test]
    fn independent_nets_share_a_track() {
        // Nets 1 and 2 occupy disjoint column ranges.
        let r = channel_route(&p(&[1, 1, 0, 2, 2], &[0, 0, 0, 0, 0], 7)).unwrap();
        assert_eq!(r.tracks, 1);
        assert_eq!(r.track_of_net[&1], r.track_of_net[&2]);
    }

    #[test]
    fn overlapping_nets_stack() {
        let r = channel_route(&p(&[1, 2, 0, 0], &[0, 0, 1, 2], 7)).unwrap();
        assert_eq!(r.tracks, 2);
    }

    #[test]
    fn vertical_constraints_respected() {
        // Column 1: top pin of net 2 above bottom pin of net 1 -> track(2)
        // above track(1).
        let r = channel_route(&p(&[2, 2, 0], &[0, 1, 1], 7)).unwrap();
        assert!(r.track_of_net[&2] < r.track_of_net[&1]);
    }

    #[test]
    fn classic_cycle_detected() {
        // Net 1 above 2 at column 0; net 2 above 1 at column 1.
        let e = channel_route(&p(&[1, 2], &[2, 1], 7)).unwrap_err();
        assert!(matches!(
            e,
            RouteError::VerticalConstraintCycle { ref nets, track: 0 } if nets == &[1, 2]
        ));
        // The message names the stuck nets and the fill round.
        let msg = e.to_string();
        assert!(msg.contains("[1, 2]"), "{msg}");
        assert!(msg.contains("track 0"), "{msg}");
    }

    #[test]
    fn density_lower_bound_holds() {
        let problem = p(&[1, 2, 3, 0, 0, 0], &[0, 0, 0, 1, 2, 3], 7);
        let d = channel_density(&problem);
        let r = channel_route(&problem).unwrap();
        assert!(r.tracks >= d);
        assert_eq!(d, 3);
    }

    #[test]
    fn empty_channel() {
        let problem = ChannelProblem {
            top: vec![None, None],
            bottom: vec![None, None],
            pitch: 7,
        };
        let r = channel_route(&problem).unwrap();
        assert_eq!(r.tracks, 0);
        assert_eq!(problem.net_count(), 0);
    }

    #[test]
    fn branches_reach_pins() {
        let r = channel_route(&p(&[1, 0, 1], &[0, 1, 0], 5)).unwrap();
        // Trunk from column 0 to 2 plus three branches.
        let segs: Vec<_> = r.segments.iter().filter(|(n, _)| *n == 1).collect();
        assert_eq!(segs.len(), 4);
        // One branch reaches the bottom edge, two the top.
        let to_bottom = segs
            .iter()
            .filter(|(_, pts)| pts.iter().any(|p| p.y == 0))
            .count();
        assert_eq!(to_bottom, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn routed_channels_respect_constraints(
            top_v in prop::collection::vec(0u32..6, 2..14),
            bottom_v in prop::collection::vec(0u32..6, 2..14),
        ) {
            // `row` maps 1 -> net 0, so the once-reserved id is exercised
            // by the random problems too.
            let p = ChannelProblem { top: row(&top_v), bottom: row(&bottom_v), pitch: 7 };
            match channel_route(&p) {
                Ok(r) => {
                    // Tracks at least density.
                    prop_assert!(r.tracks >= channel_density(&p)
                        || p.net_count() == 0);
                    // Every net present in the problem got a track.
                    let spans = net_spans(&p);
                    prop_assert_eq!(r.track_of_net.len(), spans.len());
                    // No two nets on one track overlap in span.
                    for (a, &(alo, ahi)) in &spans {
                        for (b, &(blo, bhi)) in &spans {
                            if a < b && r.track_of_net[a] == r.track_of_net[b] {
                                prop_assert!(ahi < blo || bhi < alo,
                                    "nets {a} and {b} overlap on track");
                            }
                        }
                    }
                    // Vertical constraints hold.
                    let cols = p.top.len().max(p.bottom.len());
                    for c in 0..cols {
                        if let (Some(t), Some(b)) = (pin(&p.top, c), pin(&p.bottom, c)) {
                            if t != b {
                                prop_assert!(r.track_of_net[&t] < r.track_of_net[&b]);
                            }
                        }
                    }
                }
                Err(RouteError::VerticalConstraintCycle { .. }) => {} // legal outcome
                Err(other) => return Err(TestCaseError::fail(other.to_string())),
            }
        }
    }
}
