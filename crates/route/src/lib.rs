//! # silc-route — wiring management
//!
//! "Concentration on the important wiring management problems of large
//! designs" — the paper puts interconnect at the centre of the complexity
//! problem. This crate supplies the three wiring tools a silicon compiler
//! needs:
//!
//! * [`river_route`] — single-layer planar routing across a channel whose
//!   two sides present nets in the same order. Used for cell abutment,
//!   the composition style Mead–Conway design favours. Produces minimum
//!   track counts for chained displacements and exact channel height.
//! * [`channel_route`] — the classic left-edge channel router with a
//!   vertical constraint graph: two-layer (metal trunks, poly branches),
//!   multi-pin nets, cycle detection (no doglegs — cycles are reported,
//!   the historical limitation).
//! * [`stack_assemble`] — the chip assembler of experiment E3: stacks
//!   cells bottom-to-top, river-routing between matching port names of
//!   facing edges, and reports area and wire-length statistics.
//!
//! # Example
//!
//! ```
//! use silc_route::river_route;
//!
//! // Three well-separated nets shifting right by 8 lambda.
//! let route = river_route(&[0, 20, 40], &[8, 28, 48], 4)?;
//! assert_eq!(route.tracks, 1); // parallel shifts share one track
//! # Ok::<(), silc_route::RouteError>(())
//! ```

mod assemble;
mod channel;
mod error;
mod river;

pub use assemble::{stack_assemble, stack_assemble_traced, AssemblyStats, Slice};
pub use channel::{channel_density, channel_route, ChannelProblem, ChannelRoute, NetId};
pub use error::RouteError;
pub use river::{paths_cross, river_route, RiverRoute};
