use crate::RouteError;
use silc_geom::{Coord, Point};

/// The result of river routing: one centre-line polyline per net (bottom
/// terminal to top terminal), plus the channel's vertical budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiverRoute {
    /// Per-net centre lines, bottom to top, in input order.
    pub paths: Vec<Vec<Point>>,
    /// Number of horizontal jog tracks used.
    pub tracks: usize,
    /// Channel height in lambda (bottom edge y=0 to top edge).
    pub height: Coord,
    /// Total Manhattan wire length.
    pub wire_length: Coord,
}

/// Routes a river channel: `bottom[i]` connects to `top[i]` on a single
/// layer without crossings. Both sides must present the nets in the same
/// left-to-right order (the definition of river routability) with at
/// least `pitch` separation between adjacent terminals.
///
/// Track assignment is by longest path in the planarity constraint graph:
///
/// * overlapping right-movers nest downward (a later wire passes *under*
///   an earlier one),
/// * overlapping left-movers nest upward,
/// * a left-mover overlapping a right-mover passes under it.
///
/// Straight nets use no track. The channel height is
/// `(tracks + 1) * pitch`, and grows with the length of the longest chain
/// of interlocking displacements — the behaviour experiment E8 charts.
///
/// # Errors
///
/// * [`RouteError::EmptyChannel`] — no terminals at all. A channel with
///   nothing to route is a malformed problem (the caller sized a channel
///   for zero nets); an earlier version silently returned a zero-track
///   route here, masking the construction bug upstream.
/// * [`RouteError::TerminalCountMismatch`] — side lengths differ;
/// * [`RouteError::TerminalsNotOrdered`] — a side is not strictly
///   increasing with `pitch` separation.
///
/// # Example
///
/// ```
/// use silc_route::river_route;
/// // Interlocked right shifts: each wire must duck under the previous.
/// let r = river_route(&[0, 4, 8], &[40, 44, 48], 4)?;
/// assert_eq!(r.tracks, 3);
/// # Ok::<(), silc_route::RouteError>(())
/// ```
pub fn river_route(
    bottom: &[Coord],
    top: &[Coord],
    pitch: Coord,
) -> Result<RiverRoute, RouteError> {
    if bottom.len() != top.len() {
        return Err(RouteError::TerminalCountMismatch {
            bottom: bottom.len(),
            top: top.len(),
        });
    }
    if bottom.is_empty() {
        return Err(RouteError::EmptyChannel);
    }
    let pitch = pitch.max(1);
    for (side, terms) in [("bottom", bottom), ("top", top)] {
        for i in 1..terms.len() {
            if terms[i] < terms[i - 1] + pitch {
                return Err(RouteError::TerminalsNotOrdered {
                    side,
                    index: i,
                    at: terms[i],
                    prev: terms[i - 1],
                    pitch,
                });
            }
        }
    }
    let n = bottom.len();

    // The open x-span each wire's horizontal jog occupies.
    let span = |i: usize| -> (Coord, Coord) { (bottom[i].min(top[i]), bottom[i].max(top[i])) };
    let overlaps = |i: usize, j: usize| -> bool {
        let (a0, a1) = span(i);
        let (b0, b1) = span(j);
        // Require a pitch of clearance between jogs on the same level.
        a0 < b1 + pitch && b0 < a1 + pitch
    };
    let dir = |i: usize| -> i8 {
        match top[i].cmp(&bottom[i]) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        }
    };

    // level[i]: 0 = lowest track. Edges "i must be above j" give
    // level[i] > level[j]. Process by longest path; the constraint graph
    // only ever points from later-processed to... compute iteratively.
    let mut level = vec![0i64; n];
    // For determinism and correctness, relax constraints to fixpoint
    // (the graph is a DAG; n passes suffice).
    for _ in 0..n {
        for i in 0..n {
            for j in (i + 1)..n {
                if dir(i) == 0 || dir(j) == 0 || !overlaps(i, j) {
                    continue;
                }
                match (dir(i), dir(j)) {
                    // Right-movers: later wire goes under.
                    (1, 1) => level[i] = level[i].max(level[j] + 1),
                    // Left-movers: later wire goes over.
                    (-1, -1) => level[j] = level[j].max(level[i] + 1),
                    // A left-mover ducks under a right-mover.
                    (1, -1) => level[i] = level[i].max(level[j] + 1),
                    (-1, 1) => level[j] = level[j].max(level[i] + 1),
                    _ => unreachable!(),
                }
            }
        }
    }

    // `max()` is `None` exactly when every net runs straight across
    // (`dir == 0` for all) — a legitimate routing needing no jog tracks.
    // The empty-input case was rejected above, so this cannot mask a
    // malformed problem.
    let tracks = level
        .iter()
        .enumerate()
        .filter(|&(i, _)| dir(i) != 0)
        .map(|(_, &l)| l + 1)
        .max()
        .map_or(0, |deepest| deepest as usize);
    let height = (tracks as Coord + 1) * pitch;

    let mut paths = Vec::with_capacity(n);
    let mut wire_length = 0;
    for i in 0..n {
        let path = if dir(i) == 0 {
            vec![Point::new(bottom[i], 0), Point::new(top[i], height)]
        } else {
            let y = (level[i] as Coord + 1) * pitch;
            vec![
                Point::new(bottom[i], 0),
                Point::new(bottom[i], y),
                Point::new(top[i], y),
                Point::new(top[i], height),
            ]
        };
        for w in path.windows(2) {
            wire_length += w[0].manhattan_distance(w[1]);
        }
        paths.push(path);
    }

    let route = RiverRoute {
        paths,
        tracks,
        height,
        wire_length,
    };
    debug_assert!(route_is_planar(&route), "river route must not cross");
    Ok(route)
}

fn route_is_planar(route: &RiverRoute) -> bool {
    for (i, a) in route.paths.iter().enumerate() {
        for b in &route.paths[i + 1..] {
            if paths_cross(a, b) {
                return false;
            }
        }
    }
    true
}

/// True when two Manhattan centre-line polylines intersect (touching
/// counts). Used by tests and debug assertions to certify planarity.
pub fn paths_cross(a: &[Point], b: &[Point]) -> bool {
    for sa in a.windows(2) {
        for sb in b.windows(2) {
            if segments_touch(sa[0], sa[1], sb[0], sb[1]) {
                return true;
            }
        }
    }
    false
}

fn segments_touch(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    // Manhattan segments: represent as rects of zero thickness and test
    // interval overlap on both axes.
    let (ax0, ax1) = (a1.x.min(a2.x), a1.x.max(a2.x));
    let (ay0, ay1) = (a1.y.min(a2.y), a1.y.max(a2.y));
    let (bx0, bx1) = (b1.x.min(b2.x), b1.x.max(b2.x));
    let (by0, by1) = (b1.y.min(b2.y), b1.y.max(b2.y));
    ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn straight_nets_need_one_pitch() {
        let r = river_route(&[0, 10, 20], &[0, 10, 20], 4).unwrap();
        assert_eq!(r.tracks, 0);
        assert_eq!(r.height, 4);
        assert_eq!(r.wire_length, 3 * 4);
    }

    #[test]
    fn parallel_shift_uses_one_track() {
        // Each net shifts right 8; spans [0,8],[10,18],[20,28] with pitch
        // 4 clearance: spans are 2 apart < pitch -> they interlock.
        let r = river_route(&[0, 10, 20], &[8, 18, 28], 4).unwrap();
        // Clearance rule: gap between spans is 2 < 4, so they chain.
        assert_eq!(r.tracks, 3);
        // With wide spacing they fit one track.
        let r = river_route(&[0, 20, 40], &[8, 28, 48], 4).unwrap();
        assert_eq!(r.tracks, 1);
    }

    #[test]
    fn interlocked_shifts_chain() {
        let r = river_route(&[0, 4, 8], &[40, 44, 48], 4).unwrap();
        assert_eq!(r.tracks, 3);
        assert_eq!(r.height, 16);
    }

    #[test]
    fn left_and_right_movers_coexist() {
        // Net 0 moves right across net 1's left-moving span.
        let r = river_route(&[0, 24], &[20, 28], 4).unwrap();
        assert!(r.tracks >= 1);
        // Opposite: left mover after right mover.
        let r = river_route(&[0, 30], &[24, 34], 4).unwrap();
        assert!(r.tracks >= 1);
    }

    #[test]
    fn mismatched_sides_rejected() {
        assert!(matches!(
            river_route(&[0, 10], &[0], 4),
            Err(RouteError::TerminalCountMismatch { .. })
        ));
        // One empty side against a non-empty side is a count mismatch,
        // not an empty channel.
        let e = river_route(&[], &[0, 10], 4).unwrap_err();
        assert!(matches!(
            e,
            RouteError::TerminalCountMismatch { bottom: 0, top: 2 }
        ));
        assert!(e.to_string().contains("0 bottom vs 2 top"));
    }

    #[test]
    fn unordered_terminals_rejected() {
        let e = river_route(&[0, 10, 5], &[0, 10, 20], 4).unwrap_err();
        assert!(matches!(
            e,
            RouteError::TerminalsNotOrdered {
                side: "bottom",
                index: 2,
                at: 5,
                prev: 10,
                pitch: 4,
            }
        ));
        // The message locates the offence without a debugger.
        let msg = e.to_string();
        assert!(msg.contains("bottom terminal 2 at x=5"), "{msg}");
        assert!(msg.contains("x=10"), "{msg}");
        // Too-close terminals also rejected.
        assert!(matches!(
            river_route(&[0, 2], &[0, 10], 4),
            Err(RouteError::TerminalsNotOrdered { .. })
        ));
    }

    #[test]
    fn empty_channel_is_an_error() {
        // Regression: the empty problem used to return a zero-track route
        // (via a silent `unwrap_or(0)` fallback), hiding callers that
        // built a channel with no terminals.
        assert!(matches!(
            river_route(&[], &[], 4),
            Err(RouteError::EmptyChannel)
        ));
    }

    #[test]
    fn all_straight_nets_are_not_an_error() {
        // The documented zero-track case: every net crosses straight, so
        // the `max()` over jogged nets is empty, but the problem is sound.
        let r = river_route(&[3], &[3], 4).unwrap();
        assert_eq!(r.tracks, 0);
        assert_eq!(r.height, 4);
    }

    #[test]
    fn paths_connect_terminals() {
        let r = river_route(&[0, 10, 25], &[5, 18, 30], 4).unwrap();
        for (i, path) in r.paths.iter().enumerate() {
            assert_eq!(path.first().unwrap().y, 0);
            assert_eq!(path.last().unwrap().y, r.height);
            assert_eq!(path.first().unwrap().x, [0, 10, 25][i]);
            assert_eq!(path.last().unwrap().x, [5, 18, 30][i]);
        }
    }

    #[test]
    fn cross_detector_works() {
        let a = vec![Point::new(0, 0), Point::new(10, 0)];
        let b = vec![Point::new(5, -5), Point::new(5, 5)];
        assert!(paths_cross(&a, &b));
        let c = vec![Point::new(5, 1), Point::new(5, 5)];
        assert!(!paths_cross(&a, &c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_channels_are_planar(
            gaps_b in prop::collection::vec(4i64..20, 1..10),
            gaps_t in prop::collection::vec(4i64..20, 1..10),
        ) {
            let n = gaps_b.len().min(gaps_t.len());
            let mut bottom = Vec::with_capacity(n);
            let mut top = Vec::with_capacity(n);
            let (mut xb, mut xt) = (0, 0);
            for i in 0..n {
                xb += gaps_b[i];
                xt += gaps_t[i];
                bottom.push(xb);
                top.push(xt);
            }
            let r = river_route(&bottom, &top, 4).unwrap();
            // The debug assertion inside river_route already verifies
            // planarity; re-verify here for release builds.
            for (i, a) in r.paths.iter().enumerate() {
                for b in &r.paths[i + 1..] {
                    prop_assert!(!paths_cross(a, b));
                }
            }
            // Height grows with tracks.
            prop_assert_eq!(r.height, (r.tracks as i64 + 1) * 4);
        }
    }
}
