//! Robustness: the CIF parser must never panic, whatever bytes arrive —
//! it returns a diagnostic instead. (Manufacturing interfaces meet hostile
//! tapes.)

use proptest::prelude::*;
use silc_cif::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~\n]{0,200}") {
        let _ = parse(&input); // Ok or Err, never a panic
    }

    #[test]
    fn parser_never_panics_on_cif_like_soup(
        input in "(DS|DF|C|L|B|P|W|R|E|9|T|M|;|[0-9]{1,4}|-| |\n|NM|ND|NP){0,80}",
    ) {
        let _ = parse(&input);
    }
}
