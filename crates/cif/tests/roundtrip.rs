//! Write-then-parse round-trip tests: the CIF emitted by [`CifWriter`] must
//! read back into geometry that is exactly the original scaled by the
//! physical scale factor (250 centimicrons per lambda by default).

use proptest::prelude::*;
use silc_cif::{parse, CifWriter};
use silc_geom::{Orientation, Point, Rect, Transform};
use silc_layout::{flatten, Cell, CellId, Element, Instance, Layer, Library};

const SCALE: i64 = 250;

/// Flattens and returns sorted (layer, bbox) pairs for comparison.
fn signature(lib: &Library, root: CellId) -> Vec<(usize, i64, i64, i64, i64)> {
    let mut v: Vec<_> = flatten(lib, root)
        .unwrap()
        .into_iter()
        .map(|f| {
            let b = f.element.bbox();
            (
                f.element.layer.index(),
                b.left(),
                b.bottom(),
                b.right(),
                b.top(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn scaled(sig: &[(usize, i64, i64, i64, i64)], k: i64) -> Vec<(usize, i64, i64, i64, i64)> {
    sig.iter()
        .map(|&(l, a, b, c, d)| (l, a * k, b * k, c * k, d * k))
        .collect()
}

#[test]
fn simple_hierarchy_roundtrips() {
    let mut lib = Library::new();
    let mut inv = Cell::new("inv");
    inv.push_element(Element::rect(
        Layer::Diffusion,
        Rect::from_origin_size(Point::new(0, 0), 2, 8).unwrap(),
    ));
    inv.push_element(Element::rect(
        Layer::Poly,
        Rect::from_origin_size(Point::new(-2, 3), 6, 2).unwrap(),
    ));
    let inv_id = lib.add_cell(inv).unwrap();
    let mut row = Cell::new("row");
    row.push_instance(Instance::array(inv_id, Transform::IDENTITY, 4, 1, 10, 0).unwrap());
    let row_id = lib.add_cell(row).unwrap();

    let text = CifWriter::new().write_to_string(&lib, row_id).unwrap();
    let design = parse(&text).unwrap();

    let original = signature(&lib, row_id);
    let reread = signature(&design.library, design.top);
    assert_eq!(reread, scaled(&original, SCALE));
    // Names survive the 9-extension.
    assert!(design.library.cell_by_name("inv").is_some());
    assert!(design.library.cell_by_name("row").is_some());
}

#[test]
fn every_orientation_roundtrips() {
    for orientation in Orientation::ALL {
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        // Asymmetric artwork so orientation errors show up in the bbox.
        leaf.push_element(Element::rect(
            Layer::Metal,
            Rect::from_origin_size(Point::new(1, 2), 5, 3).unwrap(),
        ));
        let leaf_id = lib.add_cell(leaf).unwrap();
        let mut top = Cell::new("top");
        top.push_instance(Instance::place(
            leaf_id,
            Transform::new(orientation, Point::new(17, -9)),
        ));
        let top_id = lib.add_cell(top).unwrap();

        let text = CifWriter::new().write_to_string(&lib, top_id).unwrap();
        let design = parse(&text).unwrap_or_else(|e| panic!("{orientation}: {e}\n{text}"));
        assert_eq!(
            signature(&design.library, design.top),
            scaled(&signature(&lib, top_id), SCALE),
            "orientation {orientation} failed\n{text}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_two_level_designs_roundtrip(
        leaf_rects in prop::collection::vec(
            (0usize..3, -20i64..20, -20i64..20, 1i64..15, 1i64..15), 1..6),
        placements in prop::collection::vec(
            (0usize..8, -50i64..50, -50i64..50), 1..6),
    ) {
        let layers = [Layer::Diffusion, Layer::Poly, Layer::Metal];
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        for &(li, x, y, w, h) in &leaf_rects {
            leaf.push_element(Element::rect(
                layers[li],
                Rect::from_origin_size(Point::new(x, y), w, h).unwrap(),
            ));
        }
        let leaf_id = lib.add_cell(leaf).unwrap();
        let mut top = Cell::new("top");
        for &(oi, x, y) in &placements {
            top.push_instance(Instance::place(
                leaf_id,
                Transform::new(Orientation::ALL[oi], Point::new(x, y)),
            ));
        }
        let top_id = lib.add_cell(top).unwrap();

        let text = CifWriter::new().write_to_string(&lib, top_id).unwrap();
        let design = parse(&text).unwrap();
        prop_assert_eq!(
            signature(&design.library, design.top),
            scaled(&signature(&lib, top_id), SCALE)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Deep hierarchies: several distinct leaf cells, a mid-level cell
    /// mixing single placements and arrays, and a top cell that also
    /// instances a leaf directly. Every cell, element, and transform must
    /// survive the write/parse cycle.
    #[test]
    fn random_multi_cell_hierarchies_roundtrip(
        leaves in prop::collection::vec(
            prop::collection::vec(
                (0usize..3, -20i64..20, -20i64..20, 1i64..15, 1i64..15), 1..4),
            2..4),
        mid_placements in prop::collection::vec(
            (0usize..4, 0usize..8, -60i64..60, -60i64..60), 1..5),
        arrays in prop::collection::vec(
            (0usize..4, 1u32..4, 1u32..3, 20i64..40, 20i64..40), 0..3),
        top_orientation in 0usize..8,
    ) {
        let layer_choices = [Layer::Diffusion, Layer::Poly, Layer::Metal];
        let mut lib = Library::new();
        let mut leaf_ids = Vec::new();
        for (n, rects) in leaves.iter().enumerate() {
            let mut leaf = Cell::new(format!("leaf{n}"));
            for &(li, x, y, w, h) in rects {
                leaf.push_element(Element::rect(
                    layer_choices[li],
                    Rect::from_origin_size(Point::new(x, y), w, h).unwrap(),
                ));
            }
            leaf_ids.push(lib.add_cell(leaf).unwrap());
        }
        let pick = |i: usize| leaf_ids[i % leaf_ids.len()];
        let mut mid = Cell::new("mid");
        // The writer only emits cells reachable from the root, so instance
        // every leaf at least once.
        for (n, &id) in leaf_ids.iter().enumerate() {
            mid.push_instance(Instance::place(
                id,
                Transform::new(Orientation::ALL[n % 8], Point::new(80 * n as i64, -45)),
            ));
        }
        for &(ci, oi, x, y) in &mid_placements {
            mid.push_instance(Instance::place(
                pick(ci),
                Transform::new(Orientation::ALL[oi], Point::new(x, y)),
            ));
        }
        for &(ci, nx, ny, dx, dy) in &arrays {
            mid.push_instance(
                Instance::array(pick(ci), Transform::IDENTITY, nx, ny, dx, dy).unwrap(),
            );
        }
        let mid_id = lib.add_cell(mid).unwrap();
        let mut top = Cell::new("top");
        top.push_instance(Instance::place(
            mid_id,
            Transform::new(Orientation::ALL[top_orientation], Point::new(-13, 27)),
        ));
        top.push_instance(Instance::place(pick(0), Transform::IDENTITY));
        let top_id = lib.add_cell(top).unwrap();

        let text = CifWriter::new().write_to_string(&lib, top_id).unwrap();
        let design = parse(&text).unwrap();
        prop_assert_eq!(
            signature(&design.library, design.top),
            scaled(&signature(&lib, top_id), SCALE)
        );
        for n in 0..leaves.len() {
            let name = format!("leaf{n}");
            prop_assert!(design.library.cell_by_name(&name).is_some());
        }
        prop_assert!(design.library.cell_by_name("mid").is_some());
        prop_assert!(design.library.cell_by_name("top").is_some());
    }
}

#[test]
fn ports_roundtrip_as_labels() {
    use silc_layout::Port;
    let mut lib = Library::new();
    let mut c = Cell::new("padframe");
    c.push_element(Element::rect(
        Layer::Metal,
        Rect::from_origin_size(Point::new(0, 0), 8, 8).unwrap(),
    ));
    c.push_port(Port::new("vdd", Layer::Metal, Point::new(0, 8)));
    c.push_port(Port::new("gnd", Layer::Diffusion, Point::new(0, 0)));
    let id = lib.add_cell(c).unwrap();

    let text = CifWriter::new().write_to_string(&lib, id).unwrap();
    assert!(text.contains("94 vdd 0 16 NM;"), "{text}");
    let design = parse(&text).unwrap();
    let cell_id = design.library.cell_by_name("padframe").unwrap();
    let cell = design.library.cell(cell_id).unwrap();
    // Coordinates come back in centimicrons (250 per lambda).
    let vdd = cell.port("vdd").expect("vdd label survives");
    assert_eq!(vdd.at, Point::new(0, 8 * 250));
    assert_eq!(vdd.layer, Layer::Metal);
    let gnd = cell.port("gnd").expect("gnd label survives");
    assert_eq!(gnd.layer, Layer::Diffusion);
}

#[test]
fn foreign_nine_extensions_still_skipped() {
    // 91/92/95... extensions from other tools must not break parsing.
    let d = parse("DS 1; 91 whatever 1 2 3; L NM; B 4 4 0 0; 95 x; DF; E").unwrap();
    assert_eq!(d.symbol_count(), 1);
}
