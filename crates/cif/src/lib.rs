//! # silc-cif — the Caltech Intermediate Form, reader and writer
//!
//! CIF (Sproull & Lyon, the paper's reference \[8\]) is "the interface to
//! manufacturing": a textual format describing mask geometry, symbol
//! definitions and symbol calls. A silicon compiler's final output is a CIF
//! file; this crate provides both directions:
//!
//! * [`CifWriter`] serialises a [`silc_layout::Library`] hierarchy to CIF
//!   2.0 text, preserving hierarchy (`DS`/`DF`/`C`) and arrays (expanded to
//!   calls), with symbol names carried in `9` user-extension commands.
//! * [`parse`] reads CIF text back into a library (coordinates in
//!   centimicrons, CIF's base unit), supporting nested comments, symbol
//!   scaling, Manhattan rotations and mirrors, boxes, polygons, wires and
//!   layer selection.
//!
//! Writing uses the *doubled-coordinate* convention: symbol definitions are
//! emitted at half the physical scale factor with all coordinates doubled,
//! so box centres — which CIF specifies exactly — stay integral even for
//! odd-lambda geometry.
//!
//! # Example: round trip
//!
//! ```
//! use silc_layout::{Cell, Element, Layer, Library};
//! use silc_geom::{Point, Rect};
//! use silc_cif::{CifWriter, parse};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let mut c = Cell::new("inv");
//! c.push_element(Element::rect(Layer::Poly, Rect::new(Point::new(0,0), Point::new(2,8))?));
//! let id = lib.add_cell(c)?;
//!
//! let text = CifWriter::new().write_to_string(&lib, id)?;
//! let design = parse(&text)?;
//! assert_eq!(design.symbol_count(), 1);
//! # Ok(())
//! # }
//! ```

mod error;
mod parse;
mod write;

pub use error::CifError;
pub use parse::{parse, parse_traced, CifDesign};
pub use write::CifWriter;
