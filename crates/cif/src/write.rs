use crate::CifError;
use silc_geom::{Orientation, Transform};
use silc_layout::{CellId, Library, Shape};
use silc_trace::{span, Tracer};
use std::fmt::Write as _;

/// Serialises a layout hierarchy to CIF 2.0 text.
///
/// The writer assigns each cell a symbol number (its [`CellId`] + 1, since
/// CIF symbol numbers start at 1), emits `DS`/`DF` definitions bottom-up,
/// records cell names as `9 name;` user-extension commands, and finishes
/// with a call of the root symbol and the `E` end marker.
///
/// Coordinates: cell geometry is in lambda; the writer doubles every
/// coordinate and halves the symbol scale factor (`DS n scale/2 1`) so that
/// box centres are exact integers even for odd-lambda rectangles. The
/// physical meaning is `centimicrons_per_lambda` centimicrons per lambda
/// (default 250 = 2.5 µm, the generous late-seventies lambda the
/// Mead–Conway text uses in examples).
///
/// # Example
///
/// ```
/// use silc_cif::CifWriter;
/// use silc_layout::{Cell, Element, Layer, Library};
/// use silc_geom::{Point, Rect};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lib = Library::new();
/// let mut c = Cell::new("box");
/// c.push_element(Element::rect(Layer::Metal, Rect::new(Point::new(0,0), Point::new(4,4))?));
/// let id = lib.add_cell(c)?;
/// let text = CifWriter::new().write_to_string(&lib, id)?;
/// assert!(text.contains("L NM;"));
/// assert!(text.trim_end().ends_with("E"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CifWriter {
    centimicrons_per_lambda: i64,
    emit_names: bool,
    tracer: Tracer,
}

impl Default for CifWriter {
    fn default() -> Self {
        CifWriter::new()
    }
}

impl CifWriter {
    /// Creates a writer at the default scale of 250 centimicrons (2.5 µm)
    /// per lambda.
    pub fn new() -> CifWriter {
        CifWriter {
            centimicrons_per_lambda: 250,
            emit_names: true,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: writes record a `cif.write` span plus
    /// `cif.symbols` and `cif.bytes` counters.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> CifWriter {
        self.tracer = tracer;
        self
    }

    /// Sets the physical scale.
    ///
    /// # Errors
    ///
    /// Returns [`CifError::OddScale`] when the scale is not a positive even
    /// integer (the doubled-coordinate convention needs `scale/2` exact).
    pub fn with_scale(mut self, centimicrons_per_lambda: i64) -> Result<CifWriter, CifError> {
        if centimicrons_per_lambda <= 0 || centimicrons_per_lambda % 2 != 0 {
            return Err(CifError::OddScale {
                centimicrons_per_lambda,
            });
        }
        self.centimicrons_per_lambda = centimicrons_per_lambda;
        Ok(self)
    }

    /// Disables `9 name;` symbol-name extension commands, for consumers
    /// that reject user extensions.
    pub fn without_names(mut self) -> CifWriter {
        self.emit_names = false;
        self
    }

    /// Writes the hierarchy reachable from `root` and returns the CIF text.
    ///
    /// # Errors
    ///
    /// Returns [`CifError::UnknownRoot`] if `root` is not in `lib`.
    pub fn write_to_string(&self, lib: &Library, root: CellId) -> Result<String, CifError> {
        let mut write_span = span!(self.tracer, "cif.write");
        if lib.cell(root).is_none() {
            return Err(CifError::UnknownRoot);
        }
        // Emit only cells reachable from the root, children first.
        let mut needed = vec![false; lib.len()];
        mark_reachable(lib, root, &mut needed);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "( SILC silicon compiler output, {} centimicrons per lambda );",
            self.centimicrons_per_lambda
        );
        let mut symbols = 0u64;
        for id in lib.topological_order() {
            if !needed[id.raw() as usize] {
                continue;
            }
            self.write_symbol(lib, id, &mut out);
            symbols += 1;
        }
        let _ = writeln!(out, "C {} T 0 0;", symbol_number(root));
        out.push_str("E\n");
        write_span.attr("symbols", symbols);
        write_span.attr("bytes", out.len() as u64);
        self.tracer.add("cif.symbols", symbols);
        self.tracer.add("cif.bytes", out.len() as u64);
        Ok(out)
    }

    fn write_symbol(&self, lib: &Library, id: CellId, out: &mut String) {
        let cell = lib.cell(id).expect("reachable cells exist");
        let half_scale = self.centimicrons_per_lambda / 2;
        let _ = writeln!(out, "DS {} {} 1;", symbol_number(id), half_scale);
        if self.emit_names {
            let _ = writeln!(out, "9 {};", cell.name());
        }
        // Group elements by layer to minimise L commands.
        let mut by_layer: Vec<(silc_layout::Layer, Vec<&Shape>)> = Vec::new();
        for e in cell.elements() {
            match by_layer.iter_mut().find(|(l, _)| *l == e.layer) {
                Some((_, v)) => v.push(&e.shape),
                None => by_layer.push((e.layer, vec![&e.shape])),
            }
        }
        for (layer, shapes) in &by_layer {
            let _ = writeln!(out, "L {};", layer.cif_name());
            for shape in shapes {
                self.write_shape(shape, out);
            }
        }
        // Ports as `94` point labels (the standard CIF label extension),
        // in doubled coordinates like all other symbol geometry.
        if self.emit_names {
            for port in cell.ports() {
                let _ = writeln!(
                    out,
                    "94 {} {} {} {};",
                    port.name,
                    2 * port.at.x,
                    2 * port.at.y,
                    port.layer.cif_name()
                );
            }
        }
        for inst in cell.instances() {
            for t in inst.placements() {
                let _ = writeln!(
                    out,
                    "C {}{};",
                    symbol_number(inst.cell),
                    transform_clauses(t)
                );
            }
        }
        let _ = writeln!(out, "DF;");
    }

    fn write_shape(&self, shape: &Shape, out: &mut String) {
        match shape {
            Shape::Rect(r) => {
                // Doubled coordinates: length = 2w, centre = (min+max).
                let (cx2, cy2) = r.center_doubled();
                let _ = writeln!(
                    out,
                    "B {} {} {} {};",
                    2 * r.width(),
                    2 * r.height(),
                    cx2,
                    cy2
                );
            }
            Shape::Polygon(p) => {
                let _ = write!(out, "P");
                for v in p.vertices() {
                    let _ = write!(out, " {} {}", 2 * v.x, 2 * v.y);
                }
                let _ = writeln!(out, ";");
            }
            Shape::Wire(w) => {
                let _ = write!(out, "W {}", 2 * w.width());
                for v in w.points() {
                    let _ = write!(out, " {} {}", 2 * v.x, 2 * v.y);
                }
                let _ = writeln!(out, ";");
            }
        }
    }
}

fn symbol_number(id: CellId) -> u64 {
    u64::from(id.raw()) + 1
}

fn mark_reachable(lib: &Library, id: CellId, needed: &mut [bool]) {
    let idx = id.raw() as usize;
    if needed[idx] {
        return;
    }
    needed[idx] = true;
    for inst in lib.cell(id).expect("valid id").instances() {
        mark_reachable(lib, inst.cell, needed);
    }
}

/// Renders a placement as CIF transformation clauses, applied left to
/// right: mirror, then rotate, then translate — matching the
/// mirror-then-rotate decomposition of [`Orientation`].
fn transform_clauses(t: Transform) -> String {
    let mut s = String::new();
    if t.orientation.is_mirrored() {
        s.push_str(" M X");
    }
    let d = match t.orientation {
        Orientation::R0 | Orientation::MX => None,
        Orientation::R90 | Orientation::MX90 => Some((0, 1)),
        Orientation::R180 | Orientation::MX180 => Some((-1, 0)),
        Orientation::R270 | Orientation::MX270 => Some((0, -1)),
    };
    if let Some((a, b)) = d {
        let _ = write!(s, " R {a} {b}");
    }
    // Call offsets are in the *defining* symbol's units, i.e. doubled
    // lambda under our convention.
    let _ = write!(s, " T {} {}", 2 * t.offset.x, 2 * t.offset.y);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::{Path, Point, Polygon, Rect};
    use silc_layout::{Cell, Element, Instance, Layer};

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    fn one_cell_lib() -> (Library, CellId) {
        let mut lib = Library::new();
        let mut c = Cell::new("unit");
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 2, 8)));
        let id = lib.add_cell(c).unwrap();
        (lib, id)
    }

    #[test]
    fn header_and_end_marker() {
        let (lib, id) = one_cell_lib();
        let text = CifWriter::new().write_to_string(&lib, id).unwrap();
        assert!(text.starts_with("( SILC"));
        assert!(text.trim_end().ends_with('E'));
    }

    #[test]
    fn box_uses_doubled_coordinates() {
        let (lib, id) = one_cell_lib();
        let text = CifWriter::new().write_to_string(&lib, id).unwrap();
        // 2x8 box at (0..2, 0..8): doubled length 4, width 16, centre (2, 8).
        assert!(text.contains("B 4 16 2 8;"), "{text}");
        // Half scale of 250 is 125.
        assert!(text.contains("DS 1 125 1;"), "{text}");
    }

    #[test]
    fn odd_rect_centre_is_exact() {
        let mut lib = Library::new();
        let mut c = Cell::new("odd");
        c.push_element(Element::rect(Layer::Poly, rect(0, 0, 3, 5)));
        let id = lib.add_cell(c).unwrap();
        let text = CifWriter::new().write_to_string(&lib, id).unwrap();
        assert!(text.contains("B 6 10 3 5;"), "{text}");
    }

    #[test]
    fn names_emitted_and_suppressed() {
        let (lib, id) = one_cell_lib();
        let with = CifWriter::new().write_to_string(&lib, id).unwrap();
        assert!(with.contains("9 unit;"));
        let without = CifWriter::new()
            .without_names()
            .write_to_string(&lib, id)
            .unwrap();
        assert!(!without.contains("9 unit;"));
    }

    #[test]
    fn scale_validation() {
        assert!(CifWriter::new().with_scale(0).is_err());
        assert!(CifWriter::new().with_scale(-2).is_err());
        assert!(CifWriter::new().with_scale(251).is_err());
        assert!(CifWriter::new().with_scale(200).is_ok());
    }

    #[test]
    fn unknown_root_rejected() {
        let lib = Library::new();
        assert!(matches!(
            CifWriter::new().write_to_string(&lib, CellId::from_raw(0)),
            Err(CifError::UnknownRoot)
        ));
    }

    #[test]
    fn hierarchy_emits_calls_children_first() {
        let (mut lib, unit) = one_cell_lib();
        let mut row = Cell::new("row");
        row.push_instance(Instance::array(unit, Transform::IDENTITY, 3, 1, 10, 0).unwrap());
        let row_id = lib.add_cell(row).unwrap();
        let text = CifWriter::new().write_to_string(&lib, row_id).unwrap();
        let unit_pos = text.find("DS 1 ").unwrap();
        let row_pos = text.find("DS 2 ").unwrap();
        assert!(unit_pos < row_pos, "children must be defined first");
        // Array expands into three calls at doubled offsets 0, 20, 40.
        assert!(text.contains("C 1 T 0 0;"));
        assert!(text.contains("C 1 T 20 0;"));
        assert!(text.contains("C 1 T 40 0;"));
        // Root call at the end.
        assert!(text.contains("C 2 T 0 0;"));
    }

    #[test]
    fn orientations_render_mirror_then_rotate() {
        let (mut lib, unit) = one_cell_lib();
        let mut top = Cell::new("top");
        top.push_instance(Instance::place(
            unit,
            Transform::new(Orientation::MX90, Point::new(5, 6)),
        ));
        let top_id = lib.add_cell(top).unwrap();
        let text = CifWriter::new().write_to_string(&lib, top_id).unwrap();
        assert!(text.contains("C 1 M X R 0 1 T 10 12;"), "{text}");
    }

    #[test]
    fn wires_and_polygons_doubled() {
        let mut lib = Library::new();
        let mut c = Cell::new("mix");
        c.push_element(Element::new(
            Layer::Metal,
            Path::new(3, vec![Point::new(0, 0), Point::new(7, 0)]).unwrap(),
        ));
        c.push_element(Element::new(
            Layer::Poly,
            Polygon::new(vec![Point::new(0, 0), Point::new(4, 0), Point::new(0, 4)]).unwrap(),
        ));
        let id = lib.add_cell(c).unwrap();
        let text = CifWriter::new().write_to_string(&lib, id).unwrap();
        assert!(text.contains("W 6 0 0 14 0;"), "{text}");
        assert!(text.contains("P 0 0 8 0 0 8;"), "{text}");
    }

    #[test]
    fn unreachable_cells_not_emitted() {
        let (mut lib, unit) = one_cell_lib();
        let orphan = Cell::new("orphan");
        lib.add_cell(orphan).unwrap();
        let text = CifWriter::new().write_to_string(&lib, unit).unwrap();
        assert!(!text.contains("orphan"));
    }
}
