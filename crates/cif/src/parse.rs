use crate::CifError;
use silc_geom::{Fingerprint, FpHasher, Orientation, Path, Point, Polygon, Rect, Transform};
use silc_layout::{Cell, CellId, Element, Instance, Layer, Library};
use std::collections::HashMap;

/// The result of parsing a CIF file.
///
/// Coordinates are in **centimicrons** (CIF's base unit), with all `DS`
/// scale factors applied. The file's top level (geometry and calls outside
/// any symbol definition) becomes a synthesised cell named `__top__`.
#[derive(Debug)]
pub struct CifDesign {
    /// The parsed hierarchy.
    pub library: Library,
    /// The synthesised top-level cell.
    pub top: CellId,
}

impl CifDesign {
    /// Total number of symbols defined in the file (excluding the
    /// synthesised top cell).
    pub fn symbol_count(&self) -> usize {
        self.library.len() - 1
    }
}

impl Fingerprint for CifDesign {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.library.fp_hash(h);
        self.top.fp_hash(h);
    }
}

/// Parses CIF 2.0 text.
///
/// Supported: nested comments, `DS`/`DF` with scale factors, `C` calls with
/// `T`/`M X`/`M Y`/`R` (Manhattan directions only), `L`, `B` (with optional
/// axis-aligned direction), `P`, `W`, `R` round-flashes (approximated by
/// their bounding square), `9 name` symbol names, other numeric user
/// extensions (skipped), and the `E` end marker.
///
/// # Errors
///
/// Any [`CifError`] variant other than `OddScale`/`UnknownRoot`; offsets in
/// [`CifError::Syntax`] are byte positions into `text`.
///
/// # Example
///
/// ```
/// let text = "DS 1 2 1; 9 pad; L NM; B 10 10 5 5; DF; C 1 T 0 0; E";
/// let design = silc_cif::parse(text)?;
/// assert_eq!(design.symbol_count(), 1);
/// # Ok::<(), silc_cif::CifError>(())
/// ```
pub fn parse(text: &str) -> Result<CifDesign, CifError> {
    parse_traced(text, &silc_trace::Tracer::disabled())
}

/// [`parse`] with a [`Tracer`](silc_trace::Tracer): records a `cif.parse` span with byte and
/// symbol counts. With a disabled tracer this is exactly [`parse`].
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_traced(text: &str, tracer: &silc_trace::Tracer) -> Result<CifDesign, CifError> {
    let mut s = silc_trace::span!(tracer, "cif.parse");
    s.attr("bytes", text.len() as u64);
    let design = Parser::new(text).run()?;
    s.attr("symbols", design.symbol_count() as u64);
    tracer.add("cif.parsed_symbols", design.symbol_count() as u64);
    Ok(design)
}

/// A symbol definition being accumulated.
#[derive(Debug, Default)]
struct SymbolBody {
    name: Option<String>,
    elements: Vec<Element>,
    calls: Vec<(u64, Transform)>,
    ports: Vec<silc_layout::Port>,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// (numerator, denominator) of the current DS scale.
    scale: (i64, i64),
    current: Option<(u64, SymbolBody)>,
    symbols: HashMap<u64, SymbolBody>,
    top: SymbolBody,
    current_layer: Option<Layer>,
    ended: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            scale: (1, 1),
            current: None,
            symbols: HashMap::new(),
            top: SymbolBody::default(),
            current_layer: None,
            ended: false,
        }
    }

    fn run(mut self) -> Result<CifDesign, CifError> {
        while !self.ended {
            self.skip_separators()?;
            if self.pos >= self.bytes.len() {
                break;
            }
            self.command()?;
        }
        if self.current.is_some() {
            return Err(CifError::UnexpectedEnd);
        }
        self.build()
    }

    // ------------------------------------------------------------------
    // Lexical layer
    // ------------------------------------------------------------------

    fn err(&self, message: impl Into<String>) -> CifError {
        CifError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_separators(&mut self) -> Result<(), CifError> {
        loop {
            match self.peek() {
                Some(b'(') => self.skip_comment()?,
                Some(c) if c.is_ascii_whitespace() || c == b',' => self.pos += 1,
                _ => return Ok(()),
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), CifError> {
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        Err(CifError::UnexpectedEnd)
    }

    fn expect_semi(&mut self) -> Result<(), CifError> {
        self.skip_separators()?;
        match self.peek() {
            Some(b';') => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected `;`, found `{}`", c as char))),
            None => Err(CifError::UnexpectedEnd),
        }
    }

    fn skip_to_semi(&mut self) -> Result<(), CifError> {
        loop {
            match self.peek() {
                Some(b';') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'(') => self.skip_comment()?,
                Some(_) => self.pos += 1,
                None => return Err(CifError::UnexpectedEnd),
            }
        }
    }

    fn integer(&mut self) -> Result<i64, CifError> {
        self.skip_separators()?;
        let start = self.pos;
        let mut neg = false;
        if self.peek() == Some(b'-') {
            neg = true;
            self.pos += 1;
        }
        let mut value: i64 = 0;
        let mut digits = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                value = value * 10 + i64::from(c - b'0');
                digits += 1;
                self.pos += 1;
            } else {
                break;
            }
        }
        if digits == 0 {
            self.pos = start;
            return Err(self.err("expected an integer"));
        }
        Ok(if neg { -value } else { value })
    }

    fn try_integer(&mut self) -> Result<Option<i64>, CifError> {
        self.skip_separators()?;
        match self.peek() {
            Some(c) if c.is_ascii_digit() || c == b'-' => Ok(Some(self.integer()?)),
            _ => Ok(None),
        }
    }

    fn word(&mut self) -> Result<String, CifError> {
        self.skip_separators()?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Reads a distance/coordinate and applies the current scale.
    fn scaled(&mut self) -> Result<i64, CifError> {
        let v = self.integer()?;
        let (a, b) = self.scale;
        let num = v * a;
        if num % b != 0 {
            return Err(CifError::InexactScale { value: v, a, b });
        }
        Ok(num / b)
    }

    // ------------------------------------------------------------------
    // Command layer
    // ------------------------------------------------------------------

    fn command(&mut self) -> Result<(), CifError> {
        let c = self.peek().ok_or(CifError::UnexpectedEnd)?;
        match c {
            // An empty command (e.g. the terminator of a standalone
            // comment) is legal and means nothing.
            b';' => {
                self.pos += 1;
                Ok(())
            }
            b'D' => {
                self.pos += 1;
                self.skip_separators()?;
                match self.peek() {
                    Some(b'S') => {
                        self.pos += 1;
                        self.define_start()
                    }
                    Some(b'F') => {
                        self.pos += 1;
                        self.define_finish()
                    }
                    Some(b'D') => Err(self.err("DD (delete definition) is not supported")),
                    _ => Err(self.err("expected DS, DF or DD")),
                }
            }
            b'C' => {
                self.pos += 1;
                self.call()
            }
            b'L' => {
                self.pos += 1;
                self.layer()
            }
            b'B' => {
                self.pos += 1;
                self.boxes()
            }
            b'P' => {
                self.pos += 1;
                self.polygon()
            }
            b'W' => {
                self.pos += 1;
                self.wire()
            }
            b'R' => {
                self.pos += 1;
                self.roundflash()
            }
            b'E' => {
                self.pos += 1;
                self.ended = true;
                Ok(())
            }
            b'0'..=b'9' => self.user_extension(),
            _ => Err(self.err(format!("unknown command `{}`", c as char))),
        }
    }

    fn define_start(&mut self) -> Result<(), CifError> {
        if self.current.is_some() {
            return Err(self.err("nested DS is not allowed"));
        }
        let id = self.integer()?;
        if id <= 0 {
            return Err(self.err("symbol number must be positive"));
        }
        let (mut a, mut b) = (1, 1);
        if let Some(na) = self.try_integer()? {
            a = na;
            b = self.integer()?;
            if a <= 0 || b <= 0 {
                return Err(self.err("scale factors must be positive"));
            }
        }
        self.expect_semi()?;
        self.scale = (a, b);
        self.current = Some((id as u64, SymbolBody::default()));
        self.current_layer = None;
        Ok(())
    }

    fn define_finish(&mut self) -> Result<(), CifError> {
        self.expect_semi()?;
        let (id, body) = self
            .current
            .take()
            .ok_or_else(|| self.err("DF without matching DS"))?;
        self.symbols.insert(id, body);
        self.scale = (1, 1);
        self.current_layer = None;
        Ok(())
    }

    fn body(&mut self) -> &mut SymbolBody {
        match &mut self.current {
            Some((_, b)) => b,
            None => &mut self.top,
        }
    }

    fn call(&mut self) -> Result<(), CifError> {
        let id = self.integer()?;
        if id <= 0 {
            return Err(self.err("called symbol number must be positive"));
        }
        let mut total = Transform::IDENTITY;
        loop {
            self.skip_separators()?;
            match self.peek() {
                Some(b';') => {
                    self.pos += 1;
                    break;
                }
                Some(b'T') => {
                    self.pos += 1;
                    let x = self.scaled()?;
                    let y = self.scaled()?;
                    total = Transform::translate(Point::new(x, y)).then(total);
                }
                Some(b'M') => {
                    self.pos += 1;
                    self.skip_separators()?;
                    let axis = self.peek().ok_or(CifError::UnexpectedEnd)?;
                    self.pos += 1;
                    let orient = match axis {
                        b'X' => Orientation::MX,
                        b'Y' => Orientation::MX180,
                        _ => return Err(self.err("mirror must be M X or M Y")),
                    };
                    total = Transform::new(orient, Point::ORIGIN).then(total);
                }
                Some(b'R') => {
                    self.pos += 1;
                    let a = self.integer()?;
                    let b = self.integer()?;
                    let orient = match (a.signum(), b.signum()) {
                        (1, 0) => Orientation::R0,
                        (0, 1) => Orientation::R90,
                        (-1, 0) => Orientation::R180,
                        (0, -1) => Orientation::R270,
                        _ => return Err(CifError::NonManhattanRotation { a, b }),
                    };
                    total = Transform::new(orient, Point::ORIGIN).then(total);
                }
                Some(c) => {
                    return Err(self.err(format!("unexpected `{}` in call", c as char)));
                }
                None => return Err(CifError::UnexpectedEnd),
            }
        }
        self.body().calls.push((id as u64, total));
        Ok(())
    }

    fn layer(&mut self) -> Result<(), CifError> {
        let name = self.word()?;
        let layer: Layer = name
            .parse()
            .map_err(|_| self.err(format!("unknown layer `{name}`")))?;
        self.expect_semi()?;
        self.current_layer = Some(layer);
        Ok(())
    }

    fn need_layer(&mut self) -> Result<Layer, CifError> {
        self.current_layer
            .ok_or_else(|| self.err("geometry before any L (layer) command"))
    }

    fn boxes(&mut self) -> Result<(), CifError> {
        let layer = self.need_layer()?;
        let length = self.scaled()?;
        let width = self.scaled()?;
        let cx = self.scaled()?;
        let cy = self.scaled()?;
        let (mut length, mut width) = (length, width);
        if let Some(dx) = self.try_integer()? {
            let dy = self.integer()?;
            match (dx.signum(), dy.signum()) {
                (_, 0) => {}
                (0, _) => std::mem::swap(&mut length, &mut width),
                _ => return Err(CifError::NonManhattanRotation { a: dx, b: dy }),
            }
        }
        self.expect_semi()?;
        if length <= 0 || width <= 0 {
            return Err(CifError::BadGeometry {
                message: format!("box with non-positive extent {length} x {width}"),
            });
        }
        if length % 2 != 0 || width % 2 != 0 {
            return Err(CifError::BadGeometry {
                message: "box corners fall off the integer grid (odd extent)".into(),
            });
        }
        let r = Rect::new(
            Point::new(cx - length / 2, cy - width / 2),
            Point::new(cx + length / 2, cy + width / 2),
        )
        .map_err(|e| CifError::BadGeometry {
            message: e.to_string(),
        })?;
        self.body().elements.push(Element::rect(layer, r));
        Ok(())
    }

    fn points_until_semi(&mut self) -> Result<Vec<Point>, CifError> {
        let mut pts = Vec::new();
        while let Some(x) = self.try_integer()? {
            // Undo the raw read: coordinates must be scaled. We read raw
            // then rescale here to reuse try_integer for termination.
            let (a, b) = self.scale;
            let sx = x * a;
            if sx % b != 0 {
                return Err(CifError::InexactScale { value: x, a, b });
            }
            let y = self.scaled()?;
            pts.push(Point::new(sx / b, y));
        }
        self.expect_semi()?;
        Ok(pts)
    }

    fn polygon(&mut self) -> Result<(), CifError> {
        let layer = self.need_layer()?;
        let pts = self.points_until_semi()?;
        let poly = Polygon::new(pts).map_err(|e| CifError::BadGeometry {
            message: e.to_string(),
        })?;
        self.body().elements.push(Element::new(layer, poly));
        Ok(())
    }

    fn wire(&mut self) -> Result<(), CifError> {
        let layer = self.need_layer()?;
        let width = self.scaled()?;
        let pts = self.points_until_semi()?;
        let path = Path::new(width, pts).map_err(|e| CifError::BadGeometry {
            message: e.to_string(),
        })?;
        self.body().elements.push(Element::new(layer, path));
        Ok(())
    }

    /// Round flashes are approximated by their bounding square — SILC never
    /// emits them, but other tools' CIF may contain them (e.g. pads).
    fn roundflash(&mut self) -> Result<(), CifError> {
        let layer = self.need_layer()?;
        let diameter = self.scaled()?;
        let cx = self.scaled()?;
        let cy = self.scaled()?;
        self.expect_semi()?;
        if diameter <= 0 || diameter % 2 != 0 {
            return Err(CifError::BadGeometry {
                message: format!("round flash with unusable diameter {diameter}"),
            });
        }
        let r = Rect::centered(Point::new(cx, cy), diameter, diameter).map_err(|e| {
            CifError::BadGeometry {
                message: e.to_string(),
            }
        })?;
        self.body().elements.push(Element::rect(layer, r));
        Ok(())
    }

    fn user_extension(&mut self) -> Result<(), CifError> {
        let digit = self.peek().expect("caller checked");
        self.pos += 1;
        if digit == b'9' {
            // `94 label x y [layer];` is the point-label extension SILC
            // uses for ports; bare `9 name;` names the current symbol.
            if self.peek() == Some(b'4') {
                self.pos += 1;
                let name = self.word()?;
                let x = self.scaled()?;
                let y = self.scaled()?;
                self.skip_separators()?;
                let layer = if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    let lname = self.word()?;
                    lname.parse::<Layer>().ok()
                } else {
                    None
                };
                self.skip_to_semi()?;
                if let Some(layer) = layer {
                    self.body()
                        .ports
                        .push(silc_layout::Port::new(name, layer, Point::new(x, y)));
                }
                return Ok(());
            }
            self.skip_separators()?;
            if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                let name = self.word()?;
                self.skip_to_semi()?;
                self.body().name = Some(name);
                return Ok(());
            }
        }
        self.skip_to_semi()
    }

    // ------------------------------------------------------------------
    // Library construction
    // ------------------------------------------------------------------

    fn build(self) -> Result<CifDesign, CifError> {
        let Parser { symbols, top, .. } = self;

        // Validate call targets and detect recursion via DFS.
        for (&id, body) in &symbols {
            for &(callee, _) in &body.calls {
                if !symbols.contains_key(&callee) {
                    return Err(CifError::UndefinedSymbol { symbol: callee });
                }
            }
            check_acyclic(id, &symbols)?;
        }
        for &(callee, _) in &top.calls {
            if !symbols.contains_key(&callee) {
                return Err(CifError::UndefinedSymbol { symbol: callee });
            }
        }

        // Topologically order symbols (children first) and insert.
        let mut order: Vec<u64> = Vec::new();
        let mut state: HashMap<u64, u8> = HashMap::new();
        let mut ids: Vec<u64> = symbols.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            topo(id, &symbols, &mut state, &mut order);
        }

        let mut library = Library::new();
        let mut cell_ids: HashMap<u64, CellId> = HashMap::new();
        let mut used_names: HashMap<String, usize> = HashMap::new();
        for id in order {
            let body = &symbols[&id];
            let base = body.name.clone().unwrap_or_else(|| format!("S{id}"));
            let name = match used_names.get_mut(&base) {
                Some(n) => {
                    *n += 1;
                    format!("{base}_{n}")
                }
                None => {
                    used_names.insert(base.clone(), 0);
                    base
                }
            };
            let mut cell = Cell::new(name);
            for e in &body.elements {
                cell.push_element(e.clone());
            }
            for p in &body.ports {
                cell.push_port(p.clone());
            }
            for &(callee, t) in &body.calls {
                cell.push_instance(Instance::place(cell_ids[&callee], t));
            }
            let cid = library.add_cell(cell).map_err(|e| CifError::BadGeometry {
                message: e.to_string(),
            })?;
            cell_ids.insert(id, cid);
        }

        let mut top_cell = Cell::new("__top__");
        for e in &top.elements {
            top_cell.push_element(e.clone());
        }
        for &(callee, t) in &top.calls {
            top_cell.push_instance(Instance::place(cell_ids[&callee], t));
        }
        let top_id = library
            .add_cell(top_cell)
            .map_err(|e| CifError::BadGeometry {
                message: e.to_string(),
            })?;

        Ok(CifDesign {
            library,
            top: top_id,
        })
    }
}

fn check_acyclic(start: u64, symbols: &HashMap<u64, SymbolBody>) -> Result<(), CifError> {
    // Iterative DFS with an explicit path set.
    fn visit(
        id: u64,
        symbols: &HashMap<u64, SymbolBody>,
        path: &mut Vec<u64>,
        done: &mut Vec<u64>,
    ) -> Result<(), CifError> {
        if done.contains(&id) {
            return Ok(());
        }
        if path.contains(&id) {
            return Err(CifError::RecursiveSymbol { symbol: id });
        }
        path.push(id);
        for &(callee, _) in &symbols[&id].calls {
            visit(callee, symbols, path, done)?;
        }
        path.pop();
        done.push(id);
        Ok(())
    }
    visit(start, symbols, &mut Vec::new(), &mut Vec::new())
}

fn topo(
    id: u64,
    symbols: &HashMap<u64, SymbolBody>,
    state: &mut HashMap<u64, u8>,
    out: &mut Vec<u64>,
) {
    if state.get(&id).copied().unwrap_or(0) != 0 {
        return;
    }
    state.insert(id, 1);
    for &(callee, _) in &symbols[&id].calls {
        topo(callee, symbols, state, out);
    }
    state.insert(id, 2);
    out.push(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_layout::Shape;

    #[test]
    fn minimal_file() {
        let d = parse("DS 1 2 1; 9 pad; L NM; B 10 10 5 5; DF; C 1 T 0 0; E").unwrap();
        assert_eq!(d.symbol_count(), 1);
        let pad = d.library.cell_by_name("pad").unwrap();
        let cell = d.library.cell(pad).unwrap();
        assert_eq!(cell.elements().len(), 1);
        // Scale 2/1 applied: 20x20 box centred (10, 10) -> corners (0,0)-(20,20).
        assert_eq!(
            cell.elements()[0].bbox(),
            Rect::new(Point::new(0, 0), Point::new(20, 20)).unwrap()
        );
    }

    #[test]
    fn comments_and_commas_are_separators() {
        let d = parse("( header ( nested ) ); DS 1; L NP; B 4,4,2,2; DF; E").unwrap();
        assert_eq!(d.symbol_count(), 1);
    }

    #[test]
    fn geometry_without_layer_rejected() {
        let err = parse("DS 1; B 4 4 2 2; DF; E").unwrap_err();
        assert!(matches!(err, CifError::Syntax { .. }));
    }

    #[test]
    fn unknown_layer_rejected() {
        let err = parse("DS 1; L QQ; DF; E").unwrap_err();
        assert!(err.to_string().contains("QQ"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = parse("C 7 T 0 0; E").unwrap_err();
        assert!(matches!(err, CifError::UndefinedSymbol { symbol: 7 }));
    }

    #[test]
    fn recursive_symbol_rejected() {
        let text = "DS 1; C 2 T 0 0; DF; DS 2; C 1 T 0 0; DF; E";
        assert!(matches!(parse(text), Err(CifError::RecursiveSymbol { .. })));
    }

    #[test]
    fn forward_references_allowed() {
        // Symbol 1 calls symbol 2, defined later — legal CIF.
        let text = "DS 1; C 2 T 10 0; DF; DS 2; L ND; B 4 4 0 0; DF; C 1 T 0 0; E";
        let d = parse(text).unwrap();
        assert_eq!(d.symbol_count(), 2);
        let s1 = d.library.cell_by_name("S1").unwrap();
        assert_eq!(d.library.cell(s1).unwrap().instances().len(), 1);
    }

    #[test]
    fn wire_and_polygon_parse() {
        let text = "DS 1; L NM; W 4 0 0 20 0 20 20; P 0 0 8 0 0 8; DF; E";
        let d = parse(text).unwrap();
        let cell = d.library.cell(CellId::from_raw(0)).unwrap();
        assert_eq!(cell.elements().len(), 2);
        assert!(matches!(cell.elements()[0].shape, Shape::Wire(_)));
        assert!(matches!(cell.elements()[1].shape, Shape::Polygon(_)));
    }

    #[test]
    fn box_with_vertical_direction_swaps() {
        let text = "DS 1; L NM; B 10 4 0 0 0 1; DF; E";
        let d = parse(text).unwrap();
        let bbox = d.library.cell(CellId::from_raw(0)).unwrap().elements()[0].bbox();
        assert_eq!(bbox.width(), 4);
        assert_eq!(bbox.height(), 10);
    }

    #[test]
    fn diagonal_box_direction_rejected() {
        let text = "DS 1; L NM; B 10 4 0 0 1 1; DF; E";
        assert!(matches!(
            parse(text),
            Err(CifError::NonManhattanRotation { .. })
        ));
    }

    #[test]
    fn roundflash_becomes_square() {
        let text = "DS 1; L NM; R 10 0 0; DF; E";
        let d = parse(text).unwrap();
        let bbox = d.library.cell(CellId::from_raw(0)).unwrap().elements()[0].bbox();
        assert_eq!(bbox.width(), 10);
        assert_eq!(bbox.height(), 10);
    }

    #[test]
    fn mirror_rotate_translate_compose() {
        let text = "DS 1; L NM; B 4 2 2 1; DF; C 1 M X R 0 1 T 10 12; E";
        let d = parse(text).unwrap();
        let top = d.library.cell(d.top).unwrap();
        let t = top.instances()[0].transform;
        assert_eq!(t.orientation, Orientation::MX90);
        assert_eq!(t.offset, Point::new(10, 12));
    }

    #[test]
    fn inexact_scale_rejected() {
        // Scale 1/3 on coordinate 4 is not integral.
        let err = parse("DS 1 1 3; L NM; B 6 6 4 0; DF; E").unwrap_err();
        assert!(matches!(err, CifError::InexactScale { .. }));
    }

    #[test]
    fn duplicate_nine_names_are_uniquified() {
        let text = "DS 1; 9 pad; L NM; B 4 4 0 0; DF; DS 2; 9 pad; L NM; B 4 4 0 0; DF; E";
        let d = parse(text).unwrap();
        assert!(d.library.cell_by_name("pad").is_some());
        assert!(d.library.cell_by_name("pad_1").is_some());
    }

    #[test]
    fn top_level_geometry_collected() {
        let d = parse("L NM; B 4 4 2 2; E").unwrap();
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements().len(), 1);
        assert_eq!(d.symbol_count(), 0);
    }

    #[test]
    fn unterminated_ds_rejected() {
        assert!(matches!(parse("DS 1; L NM;"), Err(CifError::UnexpectedEnd)));
    }

    #[test]
    fn text_after_end_marker_is_ignored() {
        let d = parse("DS 1; L NM; B 2 2 1 1; DF; E trailing garbage %%%").unwrap();
        assert_eq!(d.symbol_count(), 1);
    }
}
