use std::error::Error;
use std::fmt;

/// Error produced while writing or parsing CIF.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CifError {
    /// The writer was configured with an odd physical scale; the doubled-
    /// coordinate convention requires an even number of centimicrons per
    /// lambda.
    OddScale {
        /// The rejected scale.
        centimicrons_per_lambda: i64,
    },
    /// The requested root cell is not in the library.
    UnknownRoot,
    /// Unexpected end of input while parsing.
    UnexpectedEnd,
    /// A syntactic problem at a given byte offset.
    Syntax {
        /// Byte offset into the CIF text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A `C` call referred to a symbol number never defined.
    UndefinedSymbol {
        /// The dangling symbol number.
        symbol: u64,
    },
    /// Symbol definitions recurse, which CIF forbids.
    RecursiveSymbol {
        /// The symbol at fault.
        symbol: u64,
    },
    /// A rotation `R a b` was not one of the four Manhattan directions.
    NonManhattanRotation {
        /// Direction x component.
        a: i64,
        /// Direction y component.
        b: i64,
    },
    /// A scaled coordinate did not come out integral.
    InexactScale {
        /// The offending value before scaling.
        value: i64,
        /// Numerator of the scale factor.
        a: i64,
        /// Denominator of the scale factor.
        b: i64,
    },
    /// Geometry in the file was degenerate (empty box, bad polygon...).
    BadGeometry {
        /// Description of the defect.
        message: String,
    },
}

impl fmt::Display for CifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CifError::OddScale {
                centimicrons_per_lambda,
            } => write!(
                f,
                "scale must be an even number of centimicrons per lambda, got {centimicrons_per_lambda}"
            ),
            CifError::UnknownRoot => write!(f, "root cell is not in the library"),
            CifError::UnexpectedEnd => write!(f, "unexpected end of CIF text"),
            CifError::Syntax { offset, message } => {
                write!(f, "CIF syntax error at byte {offset}: {message}")
            }
            CifError::UndefinedSymbol { symbol } => {
                write!(f, "call of undefined symbol {symbol}")
            }
            CifError::RecursiveSymbol { symbol } => {
                write!(f, "symbol {symbol} is defined recursively")
            }
            CifError::NonManhattanRotation { a, b } => {
                write!(f, "rotation ({a}, {b}) is not a multiple of 90 degrees")
            }
            CifError::InexactScale { value, a, b } => {
                write!(f, "coordinate {value} times scale {a}/{b} is not an integer")
            }
            CifError::BadGeometry { message } => write!(f, "bad geometry: {message}"),
        }
    }
}

impl Error for CifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = CifError::UndefinedSymbol { symbol: 42 };
        assert!(e.to_string().contains("42"));
        let e = CifError::Syntax {
            offset: 17,
            message: "bad box".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("bad box"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CifError>();
    }
}
