//! # silc-drc — lambda design-rule checking
//!
//! The Mead–Conway design style the paper builds on expresses all process
//! tolerances as multiples of a single scalable length λ. This crate
//! implements a checker for those **lambda rules** over the flattened
//! layout database:
//!
//! * **minimum width** per layer (with redundant-rectangle exemption);
//! * **minimum spacing** per layer pair, measured between *merged* regions
//!   so abutting or overlapping artwork of one net never self-reports, and
//!   including same-region notches;
//! * **contact enclosure** — every cut must be surrounded by metal and by
//!   poly or diffusion;
//! * **transistor gate overhang** — poly must extend past the gate and
//!   diffusion past the channel, the rule that makes self-aligned nMOS
//!   transistors work.
//!
//! The default [`RuleSet::mead_conway_nmos`] encodes the textbook nMOS
//! rules (diff 2λ/3λ, poly 2λ/2λ, metal 3λ/3λ, poly–diff separation 1λ,
//! 2×2λ contacts with 1λ surround, 2λ gate overhangs).
//!
//! # Example
//!
//! ```
//! use silc_drc::{check, RuleSet};
//! use silc_layout::{Cell, Element, Layer, Library};
//! use silc_geom::{Point, Rect};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let mut c = Cell::new("narrow");
//! // A 1-lambda-wide metal wire: violates the 3-lambda metal width rule.
//! c.push_element(Element::rect(Layer::Metal, Rect::new(Point::new(0,0), Point::new(1,10))?));
//! let id = lib.add_cell(c)?;
//! let report = check(&lib, id, &RuleSet::mead_conway_nmos())?;
//! assert_eq!(report.violations.len(), 1);
//! # Ok(())
//! # }
//! ```

mod check;
mod region;
mod rules;

#[cfg(any(test, feature = "oracle"))]
pub use check::check_flat_brute;
pub use check::{
    check, check_cells, check_flat, check_flat_serial, check_flat_traced, check_flat_unmerged,
    check_traced, Report, RuleKind, Violation,
};
pub use region::{merge_rects, region_contains_rect, Region};
pub use rules::RuleSet;
