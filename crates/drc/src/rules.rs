use silc_geom::{Coord, Fingerprint, FpHasher};
use silc_layout::Layer;

/// A table of lambda design rules.
///
/// All values are in lambda. A zero entry disables the corresponding
/// check, so partial rule sets (used by the ablation benches) are easy to
/// express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// Human-readable name, reported with violations.
    pub name: String,
    min_width: [Coord; 7],
    /// Symmetric same/cross-layer spacing, indexed by layer indices.
    min_spacing: [[Coord; 7]; 7],
    /// Required surround of contact cuts by metal.
    pub contact_metal_surround: Coord,
    /// Required surround of contact cuts by poly or diffusion.
    pub contact_lower_surround: Coord,
    /// Poly extension beyond the transistor gate.
    pub gate_poly_overhang: Coord,
    /// Diffusion extension beyond the transistor gate.
    pub gate_diff_overhang: Coord,
}

impl RuleSet {
    /// A rule set with every check disabled. Useful as a base for custom
    /// tables and for ablation runs.
    pub fn permissive(name: impl Into<String>) -> RuleSet {
        RuleSet {
            name: name.into(),
            min_width: [0; 7],
            min_spacing: [[0; 7]; 7],
            contact_metal_surround: 0,
            contact_lower_surround: 0,
            gate_poly_overhang: 0,
            gate_diff_overhang: 0,
        }
    }

    /// The textbook Mead–Conway nMOS lambda rules.
    ///
    /// | rule | λ |
    /// |---|---|
    /// | diffusion width / spacing | 2 / 3 |
    /// | poly width / spacing | 2 / 2 |
    /// | metal width / spacing | 3 / 3 |
    /// | poly to diffusion (unrelated) | 1 |
    /// | contact cut width / spacing | 2 / 2 |
    /// | contact surround (metal, poly/diff) | 1 |
    /// | poly gate overhang | 2 |
    /// | diffusion gate overhang | 2 |
    /// | implant width, glass width | 4 (coarse features) |
    pub fn mead_conway_nmos() -> RuleSet {
        let mut r = RuleSet::permissive("mead-conway-nmos");
        r.set_min_width(Layer::Diffusion, 2);
        r.set_min_width(Layer::Poly, 2);
        r.set_min_width(Layer::Metal, 3);
        r.set_min_width(Layer::Contact, 2);
        r.set_min_width(Layer::Implant, 4);
        r.set_min_width(Layer::Glass, 4);
        r.set_min_spacing(Layer::Diffusion, Layer::Diffusion, 3);
        r.set_min_spacing(Layer::Poly, Layer::Poly, 2);
        r.set_min_spacing(Layer::Metal, Layer::Metal, 3);
        r.set_min_spacing(Layer::Poly, Layer::Diffusion, 1);
        r.set_min_spacing(Layer::Contact, Layer::Contact, 2);
        r.contact_metal_surround = 1;
        r.contact_lower_surround = 1;
        r.gate_poly_overhang = 2;
        r.gate_diff_overhang = 2;
        r
    }

    /// Minimum feature width on `layer` (0 disables the check).
    pub fn min_width(&self, layer: Layer) -> Coord {
        self.min_width[layer.index()]
    }

    /// Sets a minimum width.
    pub fn set_min_width(&mut self, layer: Layer, width: Coord) {
        self.min_width[layer.index()] = width;
    }

    /// Minimum spacing between `a` and `b` features (0 disables; the table
    /// is symmetric).
    pub fn min_spacing(&self, a: Layer, b: Layer) -> Coord {
        self.min_spacing[a.index()][b.index()]
    }

    /// Sets a spacing entry (both orders).
    pub fn set_min_spacing(&mut self, a: Layer, b: Layer, spacing: Coord) {
        self.min_spacing[a.index()][b.index()] = spacing;
        self.min_spacing[b.index()][a.index()] = spacing;
    }

    /// The layer pairs with an active spacing rule.
    pub fn active_spacing_pairs(&self) -> Vec<(Layer, Layer)> {
        let mut out = Vec::new();
        for (i, a) in Layer::ALL.iter().enumerate() {
            for b in &Layer::ALL[i..] {
                if self.min_spacing(*a, *b) > 0 {
                    out.push((*a, *b));
                }
            }
        }
        out
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::mead_conway_nmos()
    }
}

impl Fingerprint for RuleSet {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        for w in &self.min_width {
            h.write_i64(*w);
        }
        for row in &self.min_spacing {
            for s in row {
                h.write_i64(*s);
            }
        }
        h.write_i64(self.contact_metal_surround);
        h.write_i64(self.contact_lower_surround);
        h.write_i64(self.gate_poly_overhang);
        h.write_i64(self.gate_diff_overhang);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_table_values() {
        let r = RuleSet::mead_conway_nmos();
        assert_eq!(r.min_width(Layer::Metal), 3);
        assert_eq!(r.min_width(Layer::Poly), 2);
        assert_eq!(r.min_spacing(Layer::Diffusion, Layer::Diffusion), 3);
        assert_eq!(r.min_spacing(Layer::Poly, Layer::Diffusion), 1);
        // Symmetry.
        assert_eq!(r.min_spacing(Layer::Diffusion, Layer::Poly), 1);
        assert_eq!(r.gate_poly_overhang, 2);
    }

    #[test]
    fn permissive_disables_everything() {
        let r = RuleSet::permissive("off");
        for l in Layer::ALL {
            assert_eq!(r.min_width(l), 0);
        }
        assert!(r.active_spacing_pairs().is_empty());
    }

    #[test]
    fn spacing_pairs_enumerated_once() {
        let r = RuleSet::mead_conway_nmos();
        let pairs = r.active_spacing_pairs();
        assert!(pairs.contains(&(Layer::Poly, Layer::Poly)));
        // Cross pair appears once, in layer-index order.
        let cross: Vec<_> = pairs
            .iter()
            .filter(|(a, b)| *a != *b && (*a == Layer::Poly || *b == Layer::Poly))
            .collect();
        assert_eq!(cross.len(), 1);
    }

    #[test]
    fn custom_rules_editable() {
        let mut r = RuleSet::permissive("metal-only");
        r.set_min_width(Layer::Metal, 4);
        r.set_min_spacing(Layer::Metal, Layer::Metal, 4);
        assert_eq!(r.min_width(Layer::Metal), 4);
        assert_eq!(r.active_spacing_pairs(), vec![(Layer::Metal, Layer::Metal)]);
    }
}
