use silc_geom::{band_decompose, Coord, Point, Rect, RectIndex};

/// A connected group of merged rectangles on one layer — one electrical
/// region of mask geometry.
///
/// The bounding box is computed once at construction and used as a cheap
/// prefilter by [`touches_rect`](Region::touches_rect) and
/// [`contains_point`](Region::contains_point): most probes miss the bbox
/// and never scan the rectangle list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Disjoint rectangles covering the region exactly.
    rects: Vec<Rect>,
    /// Union of all rects, cached at construction.
    bbox: Rect,
}

impl Region {
    /// Builds a region from its covering rectangles.
    ///
    /// # Panics
    ///
    /// Panics on an empty rectangle list, which [`merge_rects`] never
    /// produces.
    pub fn new(rects: Vec<Rect>) -> Region {
        let bbox = rects
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .expect("regions are non-empty");
        Region { rects, bbox }
    }

    /// Bounding box of the region (cached; O(1)).
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The disjoint rectangles covering the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total area (rects are disjoint, so a plain sum).
    pub fn area(&self) -> Coord {
        self.rects.iter().map(Rect::area).sum()
    }

    /// True when the region touches `r` (shares at least a boundary
    /// point). Bbox prefilter first, then the rect list.
    pub fn touches_rect(&self, r: Rect) -> bool {
        self.bbox.touches(r) && self.rects.iter().any(|a| a.touches(r))
    }

    /// True when `p` lies on or inside the region.
    pub fn contains_point(&self, p: Point) -> bool {
        self.bbox.contains_point(p) && self.rects.iter().any(|a| a.contains_point(p))
    }
}

/// Canonicalises a bag of (possibly overlapping) rectangles into disjoint
/// maximal-band rectangles, grouped into connected [`Region`]s.
///
/// The decomposition ([`band_decompose`]) slices the union into horizontal
/// bands at every distinct rectangle top/bottom, producing per-band
/// x-spans, then merges vertically adjacent rects with identical spans.
/// Two rects belong to the same region when they touch (edge or corner);
/// connectivity is resolved through a [`RectIndex`], so each rect is
/// unioned only with its spatial neighbours rather than every other rect.
///
/// Output is deterministic: regions sorted by `(bbox.left, bbox.bottom,
/// first-rect order)`, rects within a region in band order.
pub fn merge_rects(rects: &[Rect]) -> Vec<Region> {
    let merged = band_decompose(rects);
    if merged.is_empty() {
        return Vec::new();
    }

    // Union-find over touching rects; the index limits each rect's
    // candidate set to its actual neighbours.
    let n = merged.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let index = RectIndex::build(&merged);
    for (i, rect) in merged.iter().enumerate() {
        // query(.., 0) yields every rect touching rect i, including i.
        for j in index.query(*rect, 0) {
            let j = j as usize;
            if j <= i {
                continue;
            }
            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
            if a != b {
                parent[a] = b;
            }
        }
    }

    // Group by root in ascending first-member order: a BTreeMap keyed by
    // root id makes the grouping (and thus tie-breaking below) fully
    // deterministic, unlike hashing.
    let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> =
        std::collections::BTreeMap::new();
    for (i, &r) in merged.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(r);
    }
    let mut regions: Vec<Region> = groups.into_values().map(Region::new).collect();
    regions.sort_by_key(|r| {
        let b = r.bbox();
        (b.left(), b.bottom())
    });
    regions
}

/// True when the union of `rects` fully contains `r` (coverage test used
/// by the enclosure rules).
pub fn region_contains_rect(rects: &[Rect], r: Rect) -> bool {
    let clipped: Vec<Rect> = rects.iter().filter_map(|a| a.intersection(r)).collect();
    silc_layout::union_area(&clipped) == r.area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    #[test]
    fn disjoint_rects_are_separate_regions() {
        let regions = merge_rects(&[rect(0, 0, 2, 2), rect(10, 0, 2, 2)]);
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn overlapping_rects_merge() {
        let regions = merge_rects(&[rect(0, 0, 4, 4), rect(2, 2, 4, 4)]);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].area(), 28);
        // Rects inside a region are disjoint.
        let rs = regions[0].rects();
        for (i, a) in rs.iter().enumerate() {
            for b in &rs[i + 1..] {
                assert!(!a.overlaps(*b));
            }
        }
    }

    #[test]
    fn abutting_rects_merge_into_one_rect() {
        // Two abutting halves become a single rect after vertical merging.
        let regions = merge_rects(&[rect(0, 0, 4, 2), rect(0, 2, 4, 2)]);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].rects(), &[rect(0, 0, 4, 4)]);
    }

    #[test]
    fn corner_touching_rects_same_region() {
        let regions = merge_rects(&[rect(0, 0, 2, 2), rect(2, 2, 2, 2)]);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].rects().len(), 2);
    }

    #[test]
    fn identical_rects_deduplicate() {
        let regions = merge_rects(&[rect(0, 0, 5, 5), rect(0, 0, 5, 5)]);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].area(), 25);
    }

    #[test]
    fn empty_input() {
        assert!(merge_rects(&[]).is_empty());
    }

    #[test]
    fn bbox_is_cached_and_correct() {
        let region = Region::new(vec![rect(0, 0, 2, 2), rect(8, 6, 2, 2)]);
        assert_eq!(region.bbox(), rect(0, 0, 10, 8));
        // Prefilter rejects probes outside the bbox, accepts touching.
        assert!(!region.touches_rect(rect(20, 20, 2, 2)));
        assert!(region.touches_rect(rect(2, 2, 2, 2))); // corner of first rect
        assert!(!region.touches_rect(rect(4, 0, 1, 1))); // inside bbox, off both rects
        assert!(region.contains_point(Point::new(9, 7)));
        assert!(!region.contains_point(Point::new(5, 5)));
    }

    #[test]
    fn containment_test() {
        let cover = [rect(0, 0, 4, 4), rect(4, 0, 4, 4)];
        assert!(region_contains_rect(&cover, rect(1, 1, 6, 2)));
        assert!(!region_contains_rect(&cover, rect(1, 1, 8, 2)));
        assert!(region_contains_rect(&cover, rect(0, 0, 8, 4)));
        assert!(!region_contains_rect(&[], rect(0, 0, 1, 1)));
    }

    /// Brute-force oracle: the pre-index merge algorithm, kept verbatim
    /// (modulo hashing → first-member grouping) for equivalence testing.
    fn merge_rects_brute(rects: &[Rect]) -> Vec<Region> {
        if rects.is_empty() {
            return Vec::new();
        }
        let mut ys: Vec<Coord> = rects.iter().flat_map(|r| [r.bottom(), r.top()]).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut bands: Vec<Rect> = Vec::new();
        for w in ys.windows(2) {
            let (y0, y1) = (w[0], w[1]);
            let mut spans: Vec<(Coord, Coord)> = rects
                .iter()
                .filter(|r| r.bottom() <= y0 && y1 <= r.top())
                .map(|r| (r.left(), r.right()))
                .collect();
            if spans.is_empty() {
                continue;
            }
            spans.sort_unstable();
            let mut merged: Vec<(Coord, Coord)> = Vec::new();
            for (lo, hi) in spans {
                match merged.last_mut() {
                    Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            for (lo, hi) in merged {
                bands.push(Rect::new(Point::new(lo, y0), Point::new(hi, y1)).unwrap());
            }
        }
        bands.sort_by_key(|r| (r.left(), r.right(), r.bottom()));
        let mut merged: Vec<Rect> = Vec::new();
        for band in bands {
            match merged.last_mut() {
                Some(last)
                    if last.left() == band.left()
                        && last.right() == band.right()
                        && last.top() == band.bottom() =>
                {
                    *last = last.union(band);
                }
                _ => merged.push(band),
            }
        }
        let n = merged.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for (i, a) in merged.iter().enumerate() {
            for (j, b) in merged.iter().enumerate().skip(i + 1) {
                if a.touches(*b) {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> =
            std::collections::BTreeMap::new();
        for (i, &r) in merged.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(r);
        }
        let mut regions: Vec<Region> = groups.into_values().map(Region::new).collect();
        regions.sort_by_key(|r| {
            let b = r.bbox();
            (b.left(), b.bottom())
        });
        regions
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn merge_preserves_area_and_disjointness(
            specs in prop::collection::vec((0i64..30, 0i64..30, 1i64..10, 1i64..10), 1..12),
        ) {
            let rects: Vec<_> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let regions = merge_rects(&rects);
            let merged_area: i64 = regions.iter().map(Region::area).sum();
            prop_assert_eq!(merged_area, silc_layout::union_area(&rects));
            // All rects across all regions are pairwise disjoint.
            let all: Vec<Rect> = regions.iter().flat_map(|r| r.rects().to_vec()).collect();
            for (i, a) in all.iter().enumerate() {
                for b in &all[i + 1..] {
                    prop_assert!(!a.overlaps(*b), "{a} overlaps {b}");
                }
            }
            // Different regions never touch.
            for (i, ra) in regions.iter().enumerate() {
                for rb in &regions[i + 1..] {
                    for a in ra.rects() {
                        prop_assert!(!rb.touches_rect(*a));
                    }
                }
            }
        }

        #[test]
        fn merge_matches_brute_force(
            specs in prop::collection::vec((0i64..40, 0i64..40, 1i64..12, 1i64..12), 1..40),
        ) {
            let rects: Vec<_> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            prop_assert_eq!(merge_rects(&rects), merge_rects_brute(&rects));
        }
    }
}
