use crate::{merge_rects, region_contains_rect, RuleSet};
use silc_geom::{Coord, Fingerprint, FpHasher, Rect, RectIndex};
use silc_layout::{CellId, Layer, LayoutError, Library};
use silc_trace::{span, Tracer};
use std::fmt;

/// The rule a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Feature narrower than the layer's minimum width.
    MinWidth {
        /// Layer checked.
        layer: Layer,
        /// Required width in lambda.
        required: Coord,
    },
    /// Two features closer than the minimum spacing.
    MinSpacing {
        /// First layer.
        a: Layer,
        /// Second layer.
        b: Layer,
        /// Required spacing in lambda.
        required: Coord,
    },
    /// A contact cut not sufficiently surrounded by metal.
    ContactMetalSurround {
        /// Required surround in lambda.
        required: Coord,
    },
    /// A contact cut not sufficiently surrounded by poly or diffusion.
    ContactLowerSurround {
        /// Required surround in lambda.
        required: Coord,
    },
    /// A transistor gate without the required poly/diffusion extensions.
    GateOverhang {
        /// Required poly overhang in lambda.
        poly: Coord,
        /// Required diffusion overhang in lambda.
        diff: Coord,
    },
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleKind::MinWidth { layer, required } => {
                write!(f, "{layer} width < {required}")
            }
            RuleKind::MinSpacing { a, b, required } => {
                write!(f, "{a}-{b} spacing < {required}")
            }
            RuleKind::ContactMetalSurround { required } => {
                write!(f, "contact metal surround < {required}")
            }
            RuleKind::ContactLowerSurround { required } => {
                write!(f, "contact poly/diffusion surround < {required}")
            }
            RuleKind::GateOverhang { poly, diff } => {
                write!(f, "gate overhang (poly {poly}, diff {diff}) missing")
            }
        }
    }
}

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleKind,
    /// Where (in root coordinates).
    pub at: Rect,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.rule, self.at)
    }
}

impl Fingerprint for RuleKind {
    fn fp_hash(&self, h: &mut FpHasher) {
        match *self {
            RuleKind::MinWidth { layer, required } => {
                h.write_u8(0);
                layer.fp_hash(h);
                h.write_i64(required);
            }
            RuleKind::MinSpacing { a, b, required } => {
                h.write_u8(1);
                a.fp_hash(h);
                b.fp_hash(h);
                h.write_i64(required);
            }
            RuleKind::ContactMetalSurround { required } => {
                h.write_u8(2);
                h.write_i64(required);
            }
            RuleKind::ContactLowerSurround { required } => {
                h.write_u8(3);
                h.write_i64(required);
            }
            RuleKind::GateOverhang { poly, diff } => {
                h.write_u8(4);
                h.write_i64(poly);
                h.write_i64(diff);
            }
        }
    }
}

impl Fingerprint for Violation {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.rule.fp_hash(h);
        self.at.fp_hash(h);
    }
}

impl Fingerprint for Report {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.rules);
        self.violations.fp_hash(h);
        h.write_len(self.rects_checked);
    }
}

/// The result of a DRC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Name of the rule set used.
    pub rules: String,
    /// All violations found.
    pub violations: Vec<Violation>,
    /// Number of rectangles checked (after flattening/decomposition).
    pub rects_checked: usize,
}

impl Report {
    /// True when the layout is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DRC ({}) checked {} rects: {} violation(s)",
            self.rules,
            self.rects_checked,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Applies `f` to every item, in parallel when the `parallel` feature is
/// enabled and `parallel` is true, always returning results in input
/// order. The serial and parallel paths are therefore interchangeable:
/// identical inputs give byte-identical outputs.
fn map_maybe_par<T, R>(parallel: bool, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    #[cfg(feature = "parallel")]
    if parallel && items.len() > 1 {
        use rayon::prelude::*;
        return items.par_iter().map(f).collect();
    }
    let _ = parallel;
    items.iter().map(f).collect()
}

/// Runs the design-rule checker on the flattened hierarchy under `root`.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] if `root` is not in the library.
pub fn check(lib: &Library, root: CellId, rules: &RuleSet) -> Result<Report, LayoutError> {
    check_traced(lib, root, rules, &Tracer::disabled())
}

/// [`check`] with a [`Tracer`]: records a `layout.flatten` span plus the
/// per-pass `drc.*` spans and counters of [`check_flat_traced`].
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] if `root` is not in the library.
pub fn check_traced(
    lib: &Library,
    root: CellId,
    rules: &RuleSet,
    tracer: &Tracer,
) -> Result<Report, LayoutError> {
    let layers = {
        let mut s = span!(tracer, "layout.flatten");
        let layers = silc_layout::flatten_to_rects(lib, root)?;
        s.attr("rects", layers.iter().map(Vec::len).sum::<usize>() as u64);
        layers
    };
    Ok(check_flat_traced(&layers, rules, tracer))
}

/// Runs the checker independently on several cells, in parallel when the
/// `parallel` feature is enabled. Reports come back in `roots` order.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] for the first root not in the
/// library.
pub fn check_cells(
    lib: &Library,
    roots: &[CellId],
    rules: &RuleSet,
) -> Result<Vec<Report>, LayoutError> {
    map_maybe_par(true, roots, |&root| check(lib, root, rules))
        .into_iter()
        .collect()
}

/// Runs the checker on pre-flattened per-layer rectangles (indexed by
/// [`Layer::index`]).
///
/// All passes run on a [`RectIndex`] per layer, so each rectangle is
/// compared only against its spatial neighbourhood, and independent work
/// units (layers, rule pairs, cuts, gates) run in parallel when the
/// `parallel` feature (on by default) is enabled. Output is identical to
/// [`check_flat_serial`] and to the all-pairs oracle regardless: candidate
/// ids come back from the index in the same ascending order brute-force
/// iteration would visit them, and parallel maps preserve input order.
pub fn check_flat(layers: &[Vec<Rect>], rules: &RuleSet) -> Report {
    check_flat_impl(layers, rules, true, &Tracer::disabled())
}

/// [`check_flat`] with a [`Tracer`]: each rule pass records a
/// `drc.{merge,width,spacing,contact,gate}` span, and the run flushes
/// `drc.rects_checked`, `drc.violations`, `drc.index.rects` (rectangles
/// inserted into spatial indexes) and `drc.index.bins` (grid bins built)
/// counters. With a disabled tracer this is exactly [`check_flat`].
pub fn check_flat_traced(layers: &[Vec<Rect>], rules: &RuleSet, tracer: &Tracer) -> Report {
    check_flat_impl(layers, rules, true, tracer)
}

/// [`check_flat`] with parallelism disabled: single-threaded, indexed.
/// Produces byte-identical reports; exists for determinism auditing and
/// the scaling benchmarks' serial baseline.
pub fn check_flat_serial(layers: &[Vec<Rect>], rules: &RuleSet) -> Report {
    check_flat_impl(layers, rules, false, &Tracer::disabled())
}

fn check_flat_impl(
    layers: &[Vec<Rect>],
    rules: &RuleSet,
    parallel: bool,
    tracer: &Tracer,
) -> Report {
    let mut violations = Vec::new();
    let rects_checked = layers.iter().map(Vec::len).sum();

    // Merge each layer once (independently, so in parallel).
    let merged: Vec<Vec<crate::Region>> = {
        let _s = span!(tracer, "drc.merge");
        map_maybe_par(parallel, layers, |v| merge_rects(v))
    };

    {
        let _s = span!(tracer, "drc.width");
        width_checks(layers, rules, parallel, tracer, &mut violations);
    }
    {
        let _s = span!(tracer, "drc.spacing");
        spacing_checks(&merged, rules, parallel, tracer, &mut violations);
    }
    {
        let _s = span!(tracer, "drc.contact");
        contact_checks(layers, rules, parallel, tracer, &mut violations);
    }
    {
        let _s = span!(tracer, "drc.gate");
        gate_checks(&merged, layers, rules, parallel, tracer, &mut violations);
    }

    tracer.add("drc.rects_checked", rects_checked as u64);
    tracer.add("drc.violations", violations.len() as u64);

    Report {
        rules: rules.name.clone(),
        violations,
        rects_checked,
    }
}

/// Flushes one built index's size into the run counters (a no-op on a
/// disabled tracer). Called once per index build, never per query.
fn note_index(tracer: &Tracer, index: &RectIndex) {
    tracer.add("drc.index.rects", index.len() as u64);
    tracer.add("drc.index.bins", index.bin_count() as u64);
}

/// The ablation variant of [`check_flat`]: skips maximal-rect merging and
/// runs the spacing and gate checks on the raw drawn rectangles.
///
/// The touching-exemption still prevents same-net false positives, but
/// without band canonicalisation this variant reports one violation per
/// offending *drawn* rectangle (duplicates on overlap-heavy generator
/// output) and its spacing pass scales with the square of drawn, not
/// merged, rectangles. E6's ablation bench compares the two; `DESIGN.md`
/// lists the trade.
pub fn check_flat_unmerged(layers: &[Vec<Rect>], rules: &RuleSet) -> Report {
    let mut violations = Vec::new();
    let rects_checked = layers.iter().map(Vec::len).sum();

    // Pose the raw rects as one single-rect "region" each.
    let pseudo: Vec<Vec<crate::Region>> = layers
        .iter()
        .map(|v| v.iter().map(|&r| crate::Region::new(vec![r])).collect())
        .collect();

    let tracer = Tracer::disabled();
    width_checks(layers, rules, true, &tracer, &mut violations);
    spacing_checks(&pseudo, rules, true, &tracer, &mut violations);
    contact_checks(layers, rules, true, &tracer, &mut violations);
    gate_checks(&pseudo, layers, rules, true, &tracer, &mut violations);

    Report {
        rules: format!("{} (unmerged)", rules.name),
        violations,
        rects_checked,
    }
}

/// The indexed rectangles touching `probe`, in id (= input) order. The
/// coverage tests below only ever accumulate area from rectangles that
/// intersect the probe, so restricting to this subset is exact.
fn touching(index: &RectIndex, probe: Rect) -> Vec<Rect> {
    index
        .query(probe, 0)
        .into_iter()
        .map(|j| index.rect(j))
        .collect()
}

/// Width: every *drawn* rectangle must meet the minimum width unless it is
/// redundant (fully covered by the other rectangles on the layer, in which
/// case it adds no new feature). Layers are independent → parallel units.
fn width_checks(
    layers: &[Vec<Rect>],
    rules: &RuleSet,
    parallel: bool,
    tracer: &Tracer,
    out: &mut Vec<Violation>,
) {
    let per_layer = map_maybe_par(parallel, &Layer::ALL, |&layer| {
        let w = rules.min_width(layer);
        let rects = &layers[layer.index()];
        if w == 0 || rects.iter().all(|r| r.min_dimension() >= w) {
            return Vec::new();
        }
        let index = RectIndex::build(rects);
        note_index(tracer, &index);
        let mut found = Vec::new();
        for (i, r) in rects.iter().enumerate() {
            if r.min_dimension() >= w {
                continue;
            }
            // Redundancy exemption: covered entirely by the other rects.
            // Only rects touching `r` can contribute coverage.
            let others: Vec<Rect> = index
                .query(*r, 0)
                .into_iter()
                .filter(|&j| j as usize != i)
                .map(|j| index.rect(j))
                .collect();
            if region_contains_rect(&others, *r) {
                continue;
            }
            found.push(Violation {
                rule: RuleKind::MinWidth { layer, required: w },
                at: *r,
            });
        }
        found
    });
    out.extend(per_layer.into_iter().flatten());
}

/// Spacing: between merged rects that do not touch. Covers both
/// region-to-region spacing and same-region notches. Rule pairs are
/// independent → parallel units; within a pair, each rect is compared only
/// against index candidates within the rule distance.
fn spacing_checks(
    merged: &[Vec<crate::Region>],
    rules: &RuleSet,
    parallel: bool,
    tracer: &Tracer,
    out: &mut Vec<Violation>,
) {
    let pairs = rules.active_spacing_pairs();
    let per_pair = map_maybe_par(parallel, &pairs, |&(a, b)| {
        let s = rules.min_spacing(a, b);
        let ra: Vec<Rect> = merged[a.index()]
            .iter()
            .flat_map(|r| r.rects().iter().copied())
            .collect();
        let mut found = Vec::new();
        if a == b {
            let index = RectIndex::build(&ra);
            note_index(tracer, &index);
            tracer.add("drc.queries", ra.len() as u64);
            for (i, &x) in ra.iter().enumerate() {
                // Ascending candidate ids reproduce the i<j pair order of
                // the all-pairs loop; margin s covers every violating pair
                // (violations need both axis gaps < s).
                for j in index.query(x, s) {
                    if (j as usize) > i {
                        spacing_pair(a, b, s, x, ra[j as usize], &mut found);
                    }
                }
            }
        } else {
            let rb: Vec<Rect> = merged[b.index()]
                .iter()
                .flat_map(|r| r.rects().iter().copied())
                .collect();
            let index = RectIndex::build(&rb);
            note_index(tracer, &index);
            tracer.add("drc.queries", ra.len() as u64);
            for &x in &ra {
                for j in index.query(x, s) {
                    spacing_pair(a, b, s, x, index.rect(j), &mut found);
                }
            }
        }
        found
    });
    out.extend(per_pair.into_iter().flatten());
}

fn spacing_pair(a: Layer, b: Layer, s: Coord, x: Rect, y: Rect, out: &mut Vec<Violation>) {
    if x.touches(y) {
        // Same feature (same layer) or an intentional crossing (poly over
        // diffusion forms a transistor): not a spacing violation.
        return;
    }
    let (gx, gy) = x.axis_gaps(y);
    if gx < s && gy < s {
        out.push(Violation {
            rule: RuleKind::MinSpacing { a, b, required: s },
            at: x.union(y),
        });
    }
}

/// Contacts: each cut must be surrounded by metal and by poly or
/// diffusion. Cuts are independent → parallel units; enclosure coverage
/// for each cut comes from index lookups around it.
fn contact_checks(
    layers: &[Vec<Rect>],
    rules: &RuleSet,
    parallel: bool,
    tracer: &Tracer,
    out: &mut Vec<Violation>,
) {
    let cuts = &layers[Layer::Contact.index()];
    if cuts.is_empty() {
        return;
    }
    let metal = RectIndex::build(&layers[Layer::Metal.index()]);
    let lower: Vec<Rect> = layers[Layer::Poly.index()]
        .iter()
        .chain(layers[Layer::Diffusion.index()].iter())
        .copied()
        .collect();
    let lower = RectIndex::build(&lower);
    note_index(tracer, &metal);
    note_index(tracer, &lower);
    tracer.add("drc.queries", 2 * cuts.len() as u64);

    let per_cut = map_maybe_par(parallel, cuts, |cut| {
        let mut found = Vec::new();
        if rules.contact_metal_surround > 0 {
            let needed = cut
                .inflate(rules.contact_metal_surround)
                .expect("inflating a valid rect");
            if !region_contains_rect(&touching(&metal, needed), needed) {
                found.push(Violation {
                    rule: RuleKind::ContactMetalSurround {
                        required: rules.contact_metal_surround,
                    },
                    at: *cut,
                });
            }
        }
        if rules.contact_lower_surround > 0 {
            let needed = cut
                .inflate(rules.contact_lower_surround)
                .expect("inflating a valid rect");
            // Either poly alone or diffusion alone must enclose; a mix is
            // a butting contact, which we accept when the union covers.
            if !region_contains_rect(&touching(&lower, needed), needed) {
                found.push(Violation {
                    rule: RuleKind::ContactLowerSurround {
                        required: rules.contact_lower_surround,
                    },
                    at: *cut,
                });
            }
        }
        found
    });
    out.extend(per_cut.into_iter().flatten());
}

/// Transistor gates: wherever poly crosses diffusion, poly must extend
/// `gate_poly_overhang` beyond the channel on one axis and diffusion
/// `gate_diff_overhang` on the other. A crossing fully covered by a
/// contact cut is a butting contact (the metal shorts the junction), not
/// a transistor, and is exempt. Crossing discovery queries the diffusion
/// index per poly rect; gates are then independent → parallel units.
fn gate_checks(
    merged: &[Vec<crate::Region>],
    layers: &[Vec<Rect>],
    rules: &RuleSet,
    parallel: bool,
    tracer: &Tracer,
    out: &mut Vec<Violation>,
) {
    if rules.gate_poly_overhang == 0 && rules.gate_diff_overhang == 0 {
        return;
    }
    let poly: Vec<Rect> = merged[Layer::Poly.index()]
        .iter()
        .flat_map(|r| r.rects().iter().copied())
        .collect();
    let diff: Vec<Rect> = merged[Layer::Diffusion.index()]
        .iter()
        .flat_map(|r| r.rects().iter().copied())
        .collect();
    if poly.is_empty() || diff.is_empty() {
        return;
    }
    // Gates are connected components of the poly∩diff geometry.
    let diff_index = RectIndex::build(&diff);
    let mut crossings: Vec<Rect> = Vec::new();
    for p in &poly {
        for j in diff_index.query(*p, 0) {
            if let Some(g) = p.intersection(diff_index.rect(j)) {
                crossings.push(g);
            }
        }
    }
    let cuts = RectIndex::build(&layers[Layer::Contact.index()]);
    let poly_index = RectIndex::build(&poly);
    note_index(tracer, &diff_index);
    note_index(tracer, &cuts);
    note_index(tracer, &poly_index);
    tracer.add("drc.queries", poly.len() as u64);
    let gates = merge_rects(&crossings);
    tracer.add("drc.gates", gates.len() as u64);
    let per_gate = map_maybe_par(parallel, &gates, |gate_region| {
        let g = gate_region.bbox();
        // Butting-contact exemption.
        if region_contains_rect(&touching(&cuts, g), g) {
            return None;
        }
        let pv = rules.gate_poly_overhang;
        let dv = rules.gate_diff_overhang;
        let covered = |index: &RectIndex, needed: Rect| {
            region_contains_rect(&touching(index, needed), needed)
        };
        // Orientation A: poly runs vertically (extends in y), diffusion
        // horizontally (extends in x).
        let vertical_ok =
            covered(&poly_index, grow_y(g, pv)) && covered(&diff_index, grow_x(g, dv));
        // Orientation B: the transpose.
        let horizontal_ok =
            covered(&poly_index, grow_x(g, pv)) && covered(&diff_index, grow_y(g, dv));
        if !vertical_ok && !horizontal_ok {
            Some(Violation {
                rule: RuleKind::GateOverhang { poly: pv, diff: dv },
                at: g,
            })
        } else {
            None
        }
    });
    out.extend(per_gate.into_iter().flatten());
}

fn grow_x(r: Rect, by: Coord) -> Rect {
    Rect::new(
        silc_geom::Point::new(r.left() - by, r.bottom()),
        silc_geom::Point::new(r.right() + by, r.top()),
    )
    .expect("growing keeps positive extent")
}

fn grow_y(r: Rect, by: Coord) -> Rect {
    Rect::new(
        silc_geom::Point::new(r.left(), r.bottom() - by),
        silc_geom::Point::new(r.right(), r.top() + by),
    )
    .expect("growing keeps positive extent")
}

// ---------------------------------------------------------------------------
// Brute-force oracle
// ---------------------------------------------------------------------------

/// All-pairs reference checker: the pre-index implementation, kept as the
/// correctness oracle for the equivalence proptests and the benchmark
/// baseline. O(n²) in the rectangle count — do not use on large layouts.
#[cfg(any(test, feature = "oracle"))]
pub fn check_flat_brute(layers: &[Vec<Rect>], rules: &RuleSet) -> Report {
    let mut violations = Vec::new();
    let rects_checked = layers.iter().map(Vec::len).sum();

    let merged: Vec<Vec<crate::Region>> = layers.iter().map(|v| merge_rects(v)).collect();

    brute::width_checks(layers, rules, &mut violations);
    brute::spacing_checks(&merged, rules, &mut violations);
    brute::contact_checks(layers, rules, &mut violations);
    brute::gate_checks(&merged, layers, rules, &mut violations);

    Report {
        rules: rules.name.clone(),
        violations,
        rects_checked,
    }
}

#[cfg(any(test, feature = "oracle"))]
mod brute {
    use super::*;

    pub fn width_checks(layers: &[Vec<Rect>], rules: &RuleSet, out: &mut Vec<Violation>) {
        for layer in Layer::ALL {
            let w = rules.min_width(layer);
            if w == 0 {
                continue;
            }
            let rects = &layers[layer.index()];
            for (i, r) in rects.iter().enumerate() {
                if r.min_dimension() >= w {
                    continue;
                }
                let others: Vec<Rect> = rects
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, r)| *r)
                    .collect();
                if region_contains_rect(&others, *r) {
                    continue;
                }
                out.push(Violation {
                    rule: RuleKind::MinWidth { layer, required: w },
                    at: *r,
                });
            }
        }
    }

    pub fn spacing_checks(
        merged: &[Vec<crate::Region>],
        rules: &RuleSet,
        out: &mut Vec<Violation>,
    ) {
        for (a, b) in rules.active_spacing_pairs() {
            let s = rules.min_spacing(a, b);
            let ra: Vec<Rect> = merged[a.index()]
                .iter()
                .flat_map(|r| r.rects().iter().copied())
                .collect();
            if a == b {
                for i in 0..ra.len() {
                    for j in (i + 1)..ra.len() {
                        spacing_pair(a, b, s, ra[i], ra[j], out);
                    }
                }
            } else {
                let rb: Vec<Rect> = merged[b.index()]
                    .iter()
                    .flat_map(|r| r.rects().iter().copied())
                    .collect();
                for &x in &ra {
                    for &y in &rb {
                        spacing_pair(a, b, s, x, y, out);
                    }
                }
            }
        }
    }

    pub fn contact_checks(layers: &[Vec<Rect>], rules: &RuleSet, out: &mut Vec<Violation>) {
        let cuts = &layers[Layer::Contact.index()];
        if cuts.is_empty() {
            return;
        }
        let metal = &layers[Layer::Metal.index()];
        let poly = &layers[Layer::Poly.index()];
        let diff = &layers[Layer::Diffusion.index()];
        let lower: Vec<Rect> = poly.iter().chain(diff.iter()).copied().collect();

        for cut in cuts {
            if rules.contact_metal_surround > 0 {
                let needed = cut
                    .inflate(rules.contact_metal_surround)
                    .expect("inflating a valid rect");
                if !region_contains_rect(metal, needed) {
                    out.push(Violation {
                        rule: RuleKind::ContactMetalSurround {
                            required: rules.contact_metal_surround,
                        },
                        at: *cut,
                    });
                }
            }
            if rules.contact_lower_surround > 0 {
                let needed = cut
                    .inflate(rules.contact_lower_surround)
                    .expect("inflating a valid rect");
                if !region_contains_rect(&lower, needed) {
                    out.push(Violation {
                        rule: RuleKind::ContactLowerSurround {
                            required: rules.contact_lower_surround,
                        },
                        at: *cut,
                    });
                }
            }
        }
    }

    pub fn gate_checks(
        merged: &[Vec<crate::Region>],
        layers: &[Vec<Rect>],
        rules: &RuleSet,
        out: &mut Vec<Violation>,
    ) {
        if rules.gate_poly_overhang == 0 && rules.gate_diff_overhang == 0 {
            return;
        }
        let poly: Vec<Rect> = merged[Layer::Poly.index()]
            .iter()
            .flat_map(|r| r.rects().iter().copied())
            .collect();
        let diff: Vec<Rect> = merged[Layer::Diffusion.index()]
            .iter()
            .flat_map(|r| r.rects().iter().copied())
            .collect();
        if poly.is_empty() || diff.is_empty() {
            return;
        }
        let mut crossings: Vec<Rect> = Vec::new();
        for p in &poly {
            for d in &diff {
                if let Some(g) = p.intersection(*d) {
                    crossings.push(g);
                }
            }
        }
        let cuts = &layers[Layer::Contact.index()];
        for gate_region in merge_rects(&crossings) {
            let g = gate_region.bbox();
            if region_contains_rect(cuts, g) {
                continue;
            }
            let pv = rules.gate_poly_overhang;
            let dv = rules.gate_diff_overhang;
            let vertical_ok = region_contains_rect(&poly, grow_y(g, pv))
                && region_contains_rect(&diff, grow_x(g, dv));
            let horizontal_ok = region_contains_rect(&poly, grow_x(g, pv))
                && region_contains_rect(&diff, grow_y(g, dv));
            if !vertical_ok && !horizontal_ok {
                out.push(Violation {
                    rule: RuleKind::GateOverhang { poly: pv, diff: dv },
                    at: g,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use silc_geom::Point;

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    fn flat_with(layer: Layer, rects: Vec<Rect>) -> Vec<Vec<Rect>> {
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        layers[layer.index()] = rects;
        layers
    }

    fn rules() -> RuleSet {
        RuleSet::mead_conway_nmos()
    }

    #[test]
    fn clean_wide_metal() {
        let report = check_flat(&flat_with(Layer::Metal, vec![rect(0, 0, 3, 20)]), &rules());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn narrow_metal_flagged() {
        let report = check_flat(&flat_with(Layer::Metal, vec![rect(0, 0, 2, 20)]), &rules());
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0].rule,
            RuleKind::MinWidth {
                layer: Layer::Metal,
                required: 3
            }
        ));
    }

    #[test]
    fn redundant_narrow_rect_exempt() {
        // A 1-wide sliver fully inside a legal fat rect is harmless.
        let report = check_flat(
            &flat_with(Layer::Metal, vec![rect(0, 0, 10, 10), rect(2, 2, 1, 5)]),
            &rules(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn spacing_violation_between_regions() {
        // Two metal wires 2 apart; rule wants 3.
        let report = check_flat(
            &flat_with(Layer::Metal, vec![rect(0, 0, 3, 10), rect(5, 0, 3, 10)]),
            &rules(),
        );
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0].rule,
            RuleKind::MinSpacing {
                a: Layer::Metal,
                b: Layer::Metal,
                required: 3
            }
        ));
    }

    #[test]
    fn abutting_rects_no_spacing_violation() {
        let report = check_flat(
            &flat_with(Layer::Metal, vec![rect(0, 0, 3, 10), rect(3, 0, 3, 10)]),
            &rules(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn diagonal_spacing_checked() {
        // Corner-to-corner gap of (2, 2) violates 3-lambda spacing.
        let report = check_flat(
            &flat_with(Layer::Metal, vec![rect(0, 0, 3, 3), rect(5, 5, 3, 3)]),
            &rules(),
        );
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn notch_in_same_region_flagged() {
        // A U shape in poly with a 1-lambda slot (rule wants 2).
        let u = vec![
            rect(0, 0, 7, 2), // base
            rect(0, 2, 3, 6), // left prong
            rect(4, 2, 3, 6), // right prong (slot of width 1 between)
        ];
        let report = check_flat(&flat_with(Layer::Poly, u), &rules());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.rule, RuleKind::MinSpacing { .. })),
            "{report}"
        );
    }

    #[test]
    fn poly_diff_separation() {
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        layers[Layer::Poly.index()] = vec![rect(0, 0, 2, 10)];
        // Diffusion abutting would be a transistor; at 0 gap they touch and
        // are fine, at... the rule wants 1, so nothing between touch and 1.
        // Put it 1 away: legal.
        layers[Layer::Diffusion.index()] = vec![rect(3, 0, 4, 10)];
        let report = check_flat(&layers, &rules());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn good_contact_passes() {
        // 2x2 cut at (4,4), metal and diff with 1-lambda surround.
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        layers[Layer::Contact.index()] = vec![rect(4, 4, 2, 2)];
        layers[Layer::Metal.index()] = vec![rect(3, 3, 4, 4)];
        layers[Layer::Diffusion.index()] = vec![rect(3, 3, 4, 4)];
        let report = check_flat(&layers, &rules());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn bare_contact_flagged_twice() {
        let report = check_flat(&flat_with(Layer::Contact, vec![rect(0, 0, 2, 2)]), &rules());
        assert_eq!(report.violations.len(), 2);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.rule, RuleKind::ContactMetalSurround { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.rule, RuleKind::ContactLowerSurround { .. })));
    }

    #[test]
    fn proper_transistor_passes() {
        // Poly 2 wide crossing diff 4 wide; poly extends 2 beyond channel
        // vertically, diff extends 2 beyond horizontally.
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        layers[Layer::Poly.index()] = vec![rect(4, 0, 2, 8)]; // vertical poly
        layers[Layer::Diffusion.index()] = vec![rect(0, 3, 10, 2)]; // horizontal diff
        let report = check_flat(&layers, &rules());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn missing_gate_overhang_flagged() {
        // Poly stops flush with the diffusion edge: no overhang.
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        layers[Layer::Poly.index()] = vec![rect(4, 3, 2, 2)]; // only covers channel
        layers[Layer::Diffusion.index()] = vec![rect(0, 3, 10, 2)];
        let report = check_flat(&layers, &rules());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.rule, RuleKind::GateOverhang { .. })),
            "{report}"
        );
    }

    #[test]
    fn permissive_rules_report_nothing() {
        let report = check_flat(
            &flat_with(Layer::Metal, vec![rect(0, 0, 1, 1), rect(2, 0, 1, 1)]),
            &RuleSet::permissive("off"),
        );
        assert!(report.is_clean());
    }

    #[test]
    fn check_via_library() {
        use silc_layout::{Cell, Element};
        let mut lib = Library::new();
        let mut c = Cell::new("bad");
        c.push_element(Element::rect(Layer::Metal, rect(0, 0, 1, 10)));
        let id = lib.add_cell(c).unwrap();
        let report = check(&lib, id, &rules()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.to_string().contains("metal width"));
    }

    #[test]
    fn check_cells_reports_in_order() {
        use silc_layout::{Cell, Element};
        let mut lib = Library::new();
        let mut good = Cell::new("good");
        good.push_element(Element::rect(Layer::Metal, rect(0, 0, 3, 10)));
        let mut bad = Cell::new("bad");
        bad.push_element(Element::rect(Layer::Metal, rect(0, 0, 1, 10)));
        let good_id = lib.add_cell(good).unwrap();
        let bad_id = lib.add_cell(bad).unwrap();
        let reports = check_cells(&lib, &[good_id, bad_id, good_id], &rules()).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports[0].is_clean());
        assert!(!reports[1].is_clean());
        assert!(reports[2].is_clean());
    }

    #[test]
    fn unmerged_variant_agrees_on_simple_cases() {
        // Disjoint clean wires: both variants clean.
        let layers = flat_with(Layer::Metal, vec![rect(0, 0, 3, 10), rect(10, 0, 3, 10)]);
        assert!(check_flat(&layers, &rules()).is_clean());
        assert!(check_flat_unmerged(&layers, &rules()).is_clean());
        // A real spacing violation: both catch it.
        let layers = flat_with(Layer::Metal, vec![rect(0, 0, 3, 10), rect(5, 0, 3, 10)]);
        assert!(!check_flat(&layers, &rules()).is_clean());
        assert!(!check_flat_unmerged(&layers, &rules()).is_clean());
    }

    #[test]
    fn unmerged_variant_duplicates_reports() {
        // A wire drawn as three overlapping rects next to another wire:
        // one physical violation. The merged checker canonicalises the
        // overlaps and reports once; the raw variant reports once per
        // offending drawn rect — the duplication (and quadratic blowup on
        // overlap-heavy generators) that canonicalisation buys away.
        let layers = flat_with(
            Layer::Metal,
            vec![
                rect(0, 0, 4, 6),
                rect(0, 4, 4, 6),
                rect(0, 8, 4, 6),
                rect(6, 0, 4, 14), // 2-lambda gap: violation
            ],
        );
        let merged = check_flat(&layers, &rules());
        let raw = check_flat_unmerged(&layers, &rules());
        assert_eq!(merged.violations.len(), 1, "{merged}");
        assert!(raw.violations.len() > 1, "{raw}");
    }

    #[test]
    fn traced_run_matches_untraced_and_records_passes() {
        let layers = flat_with(Layer::Metal, vec![rect(0, 0, 2, 20), rect(5, 0, 3, 10)]);
        let tracer = Tracer::enabled();
        let traced = check_flat_traced(&layers, &rules(), &tracer);
        let plain = check_flat(&layers, &rules());
        assert_eq!(traced, plain);
        let report = tracer.finish();
        for pass in [
            "drc.merge",
            "drc.width",
            "drc.spacing",
            "drc.contact",
            "drc.gate",
        ] {
            assert!(
                report.spans().iter().any(|s| s.name == pass),
                "missing {pass}"
            );
        }
        assert_eq!(report.counter("drc.rects_checked"), Some(2));
        assert_eq!(
            report.counter("drc.violations"),
            Some(plain.violations.len() as u64)
        );
        assert!(report.counter("drc.index.rects").unwrap_or(0) > 0);
    }

    #[test]
    fn check_traced_spans_flatten() {
        use silc_layout::{Cell, Element};
        let mut lib = Library::new();
        let mut c = Cell::new("m");
        c.push_element(Element::rect(Layer::Metal, rect(0, 0, 4, 10)));
        let id = lib.add_cell(c).unwrap();
        let tracer = Tracer::enabled();
        let report = check_traced(&lib, id, &rules(), &tracer).unwrap();
        assert!(report.is_clean());
        let trace = tracer.finish();
        assert!(trace.spans().iter().any(|s| s.name == "layout.flatten"));
    }

    #[test]
    fn report_display() {
        let report = check_flat(&flat_with(Layer::Metal, vec![rect(0, 0, 3, 3)]), &rules());
        let s = report.to_string();
        assert!(s.contains("mead-conway-nmos"));
        assert!(s.contains("0 violation"));
    }

    /// Buckets random rect specs into the 7 layout layers. The coordinate
    /// ranges are tight enough that random layouts are dense in
    /// violations, exercising every rule kind.
    fn layers_from_specs(specs: &[(usize, i64, i64, i64, i64)]) -> Vec<Vec<Rect>> {
        let mut layers = vec![Vec::new(); Layer::ALL.len()];
        for &(l, x, y, w, h) in specs {
            layers[l % Layer::ALL.len()].push(rect(x, y, w, h));
        }
        layers
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole guarantee: the indexed checker (serial and
        /// parallel) reports exactly the violations of the all-pairs
        /// oracle, in the same order.
        #[test]
        fn indexed_checker_matches_brute_force(
            specs in prop::collection::vec(
                (0usize..7, 0i64..80, 0i64..80, 1i64..12, 1i64..12), 1..80),
        ) {
            let layers = layers_from_specs(&specs);
            let rules = rules();
            let indexed = check_flat(&layers, &rules);
            let brute = check_flat_brute(&layers, &rules);
            prop_assert_eq!(&indexed.violations, &brute.violations);
            prop_assert_eq!(indexed.rects_checked, brute.rects_checked);
            let serial = check_flat_serial(&layers, &rules);
            prop_assert_eq!(&serial.violations, &indexed.violations);
        }

        /// Same equivalence under the permissive and sparse regimes:
        /// mostly-clean layouts must not diverge either.
        #[test]
        fn indexed_checker_matches_brute_force_sparse(
            specs in prop::collection::vec(
                (0usize..7, 0i64..400, 0i64..400, 2i64..8, 2i64..8), 1..40),
        ) {
            let layers = layers_from_specs(&specs);
            let rules = rules();
            prop_assert_eq!(
                check_flat(&layers, &rules).violations,
                check_flat_brute(&layers, &rules).violations
            );
        }
    }
}
