use crate::RtlError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    /// A literal, with optional declared width (`12'o7777`).
    Number {
        value: u64,
        width: Option<u32>,
    },
    // Keywords.
    Machine,
    Reg,
    Mem,
    Port,
    Input,
    Output,
    StateKw,
    If,
    Else,
    Goto,
    Halt,
    Init,
    // Punctuation and operators.
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Assign, // :=
    Plus,
    Minus,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Eof,
}

impl TokenKind {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number { value, .. } => format!("number {value}"),
            TokenKind::Eof => "end of input".into(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Machine => "machine",
            TokenKind::Reg => "reg",
            TokenKind::Mem => "mem",
            TokenKind::Port => "port",
            TokenKind::Input => "input",
            TokenKind::Output => "output",
            TokenKind::StateKw => "state",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Goto => "goto",
            TokenKind::Halt => "halt",
            TokenKind::Init => "init",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Assign => ":=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Ident(_) | TokenKind::Number { .. } | TokenKind::Eof => unreachable!(),
        }
    }
}

/// Tokenizes ISL source. Comments run from `//` to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, RtlError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                col += 1;
            }
            b'/' if next == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => push!(TokenKind::LBrace, 1),
            b'}' => push!(TokenKind::RBrace, 1),
            b'[' => push!(TokenKind::LBracket, 1),
            b']' => push!(TokenKind::RBracket, 1),
            b'(' => push!(TokenKind::LParen, 1),
            b')' => push!(TokenKind::RParen, 1),
            b';' => push!(TokenKind::Semi, 1),
            b',' => push!(TokenKind::Comma, 1),
            b'+' => push!(TokenKind::Plus, 1),
            b'-' => push!(TokenKind::Minus, 1),
            b'^' => push!(TokenKind::Caret, 1),
            b'~' => push!(TokenKind::Tilde, 1),
            b':' if next == b'=' => push!(TokenKind::Assign, 2),
            b':' => push!(TokenKind::Colon, 1),
            b'&' if next == b'&' => push!(TokenKind::AndAnd, 2),
            b'&' => push!(TokenKind::Amp, 1),
            b'|' if next == b'|' => push!(TokenKind::OrOr, 2),
            b'|' => push!(TokenKind::Pipe, 1),
            b'=' if next == b'=' => push!(TokenKind::EqEq, 2),
            b'!' if next == b'=' => push!(TokenKind::NotEq, 2),
            b'!' => push!(TokenKind::Bang, 1),
            b'<' if next == b'<' => push!(TokenKind::Shl, 2),
            b'<' if next == b'=' => push!(TokenKind::Le, 2),
            b'<' => push!(TokenKind::Lt, 1),
            b'>' if next == b'>' => push!(TokenKind::Shr, 2),
            b'>' if next == b'=' => push!(TokenKind::Ge, 2),
            b'>' => push!(TokenKind::Gt, 1),
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&source[i..], line, col)?;
                tokens.push(Token {
                    kind: tok,
                    line,
                    col,
                });
                i += len;
                col += len;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word {
                    "machine" => TokenKind::Machine,
                    "reg" => TokenKind::Reg,
                    "mem" => TokenKind::Mem,
                    "port" => TokenKind::Port,
                    "input" => TokenKind::Input,
                    "output" => TokenKind::Output,
                    "state" => TokenKind::StateKw,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "goto" => TokenKind::Goto,
                    "halt" => TokenKind::Halt,
                    "init" => TokenKind::Init,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, line, col });
                col += i - start;
            }
            other => {
                return Err(RtlError::Syntax {
                    line,
                    col,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

/// Lexes a number starting at `text`, returning the token and consumed
/// byte count. Supports decimal, `0x`/`0o`/`0b` prefixes, and Verilog-ish
/// sized literals `12'o7777`, `4'b1010`, `8'd255`, `8'hff`.
fn lex_number(text: &str, line: usize, col: usize) -> Result<(TokenKind, usize), RtlError> {
    let bytes = text.as_bytes();
    let syntax = |message: String| RtlError::Syntax { line, col, message };

    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let lead: u64 = text[..i]
        .parse()
        .map_err(|_| syntax("number too large".into()))?;

    // Sized literal?
    if i < bytes.len() && bytes[i] == b'\'' {
        let width = u32::try_from(lead).map_err(|_| syntax("width too large".into()))?;
        i += 1;
        let base = match bytes.get(i) {
            Some(b'b') => 2,
            Some(b'o') => 8,
            Some(b'd') => 10,
            Some(b'h') => 16,
            _ => return Err(syntax("expected base letter b/o/d/h after '".into())),
        };
        i += 1;
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        let value = u64::from_str_radix(&text[start..i], base)
            .map_err(|_| syntax(format!("bad base-{base} digits")))?;
        return Ok((
            TokenKind::Number {
                value,
                width: Some(width),
            },
            i,
        ));
    }

    // Prefixed radix?
    if lead == 0 && i == 1 {
        let radix = match bytes.get(1) {
            Some(b'x') | Some(b'X') => Some(16),
            Some(b'o') | Some(b'O') => Some(8),
            Some(b'b') | Some(b'B') => Some(2),
            _ => None,
        };
        if let Some(radix) = radix {
            let start = 2;
            let mut j = start;
            while j < bytes.len() && bytes[j].is_ascii_alphanumeric() {
                j += 1;
            }
            let value = u64::from_str_radix(&text[start..j], radix)
                .map_err(|_| syntax(format!("bad base-{radix} digits")))?;
            return Ok((TokenKind::Number { value, width: None }, j));
        }
    }

    Ok((
        TokenKind::Number {
            value: lead,
            width: None,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let k = kinds("machine m reg counter");
        assert_eq!(
            k,
            vec![
                TokenKind::Machine,
                TokenKind::Ident("m".into()),
                TokenKind::Reg,
                TokenKind::Ident("counter".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_all_forms() {
        assert_eq!(
            kinds("42 0x2A 0o52 0b101010"),
            vec![
                TokenKind::Number {
                    value: 42,
                    width: None
                };
                4
            ]
            .into_iter()
            .chain([TokenKind::Eof])
            .collect::<Vec<_>>()
        );
        assert_eq!(
            kinds("12'o7777"),
            vec![
                TokenKind::Number {
                    value: 0o7777,
                    width: Some(12)
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("4'b1010"),
            vec![
                TokenKind::Number {
                    value: 10,
                    width: Some(4)
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds(":= == != <= >= << >> && ||"),
            vec![
                TokenKind::Assign,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn slice_colon_vs_assign() {
        assert_eq!(
            kinds("a[3:0] := 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LBracket,
                TokenKind::Number {
                    value: 3,
                    width: None
                },
                TokenKind::Colon,
                TokenKind::Number {
                    value: 0,
                    width: None
                },
                TokenKind::RBracket,
                TokenKind::Assign,
                TokenKind::Number {
                    value: 1,
                    width: None
                },
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let toks = lex("a // comment\n  b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Ident("b".into()));
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn bad_character_diagnosed() {
        let err = lex("a $ b").unwrap_err();
        assert!(matches!(
            err,
            RtlError::Syntax {
                line: 1,
                col: 3,
                ..
            }
        ));
    }

    #[test]
    fn bad_sized_literal() {
        assert!(lex("8'q12").is_err());
        assert!(lex("8'hzz").is_err());
    }
}
