use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use crate::RtlError;
use std::collections::HashSet;

/// Parses and validates an ISL machine description.
///
/// Validation guarantees the simulator and synthesizer never meet an
/// undeclared name, an out-of-range slice, a dangling `goto`, a write to
/// an input, or a zero/over-64-bit width.
///
/// # Errors
///
/// Any [`RtlError`] variant except the simulation-time ones.
///
/// # Example
///
/// ```
/// let m = silc_rtl::parse("machine m { reg a[4]; state s { a := a + 1; } }")?;
/// assert_eq!(m.regs[0].width, 4);
/// # Ok::<(), silc_rtl::RtlError>(())
/// ```
pub fn parse(source: &str) -> Result<Machine, RtlError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let machine = p.machine()?;
    validate(&machine)?;
    Ok(machine)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> RtlError {
        let t = &self.tokens[self.pos];
        RtlError::Syntax {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), RtlError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, RtlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn number(&mut self) -> Result<u64, RtlError> {
        match *self.peek() {
            TokenKind::Number { value, .. } => {
                self.advance();
                Ok(value)
            }
            _ => Err(self.err_here(format!("expected number, found {}", self.peek().describe()))),
        }
    }

    // ---------------------------------------------------------------
    // Grammar
    // ---------------------------------------------------------------

    fn machine(&mut self) -> Result<Machine, RtlError> {
        self.expect(TokenKind::Machine)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut m = Machine {
            name,
            regs: Vec::new(),
            mems: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            states: Vec::new(),
        };
        loop {
            match self.peek() {
                TokenKind::Reg => self.reg_decl(&mut m)?,
                TokenKind::Mem => self.mem_decl(&mut m)?,
                TokenKind::Port => self.port_decl(&mut m)?,
                TokenKind::StateKw => self.state_decl(&mut m)?,
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                _ => {
                    return Err(self.err_here(format!(
                        "expected a declaration or `}}`, found {}",
                        self.peek().describe()
                    )))
                }
            }
        }
        self.expect(TokenKind::Eof)?;
        Ok(m)
    }

    fn reg_decl(&mut self, m: &mut Machine) -> Result<(), RtlError> {
        self.expect(TokenKind::Reg)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let width = self.number()?;
        self.expect(TokenKind::RBracket)?;
        let mut init = 0;
        if *self.peek() == TokenKind::Init {
            self.advance();
            init = self.number()?;
        }
        self.expect(TokenKind::Semi)?;
        check_width(&name, width)?;
        m.regs.push(RegDecl {
            name,
            width: width as u32,
            init,
        });
        Ok(())
    }

    fn mem_decl(&mut self, m: &mut Machine) -> Result<(), RtlError> {
        self.expect(TokenKind::Mem)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let words = self.number()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::LBracket)?;
        let width = self.number()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Semi)?;
        check_width(&name, width)?;
        if words == 0 {
            return Err(RtlError::BadWidth { name, width: 0 });
        }
        m.mems.push(MemDecl {
            name,
            words,
            width: width as u32,
        });
        Ok(())
    }

    fn port_decl(&mut self, m: &mut Machine) -> Result<(), RtlError> {
        self.expect(TokenKind::Port)?;
        let is_input = match self.advance() {
            TokenKind::Input => true,
            TokenKind::Output => false,
            _ => return Err(self.err_here("expected `input` or `output` after `port`")),
        };
        let name = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let width = self.number()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Semi)?;
        check_width(&name, width)?;
        let decl = PortDecl {
            name,
            width: width as u32,
        };
        if is_input {
            m.inputs.push(decl);
        } else {
            m.outputs.push(decl);
        }
        Ok(())
    }

    fn state_decl(&mut self, m: &mut Machine) -> Result<(), RtlError> {
        self.expect(TokenKind::StateKw)?;
        let name = self.ident()?;
        let body = self.block()?;
        m.states.push(State { name, body });
        Ok(())
    }

    fn block(&mut self) -> Result<Vec<Stmt>, RtlError> {
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            body.push(self.stmt()?);
        }
        self.advance(); // }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, RtlError> {
        match self.peek().clone() {
            TokenKind::If => {
                self.advance();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == TokenKind::Else {
                    self.advance();
                    if *self.peek() == TokenKind::If {
                        vec![self.stmt()?] // else if chains
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::Goto => {
                self.advance();
                let name = self.ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Goto(name))
            }
            TokenKind::Halt => {
                self.advance();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Halt)
            }
            TokenKind::Ident(name) => {
                self.advance();
                let target = if *self.peek() == TokenKind::LBracket {
                    self.advance();
                    // Distinguish slice target (numbers) from memory write
                    // (expression address) by trying `num : num ]` or
                    // `num ]` first.
                    let save = self.pos;
                    if let TokenKind::Number { value: hi, .. } = *self.peek() {
                        self.advance();
                        match self.peek().clone() {
                            TokenKind::Colon => {
                                self.advance();
                                let lo = self.number()?;
                                self.expect(TokenKind::RBracket)?;
                                Target::Signal {
                                    name,
                                    slice: Some((hi as u32, lo as u32)),
                                }
                            }
                            TokenKind::RBracket if !self.is_assign_to_mem(&name) => {
                                self.advance();
                                Target::Signal {
                                    name,
                                    slice: Some((hi as u32, hi as u32)),
                                }
                            }
                            _ => {
                                self.pos = save;
                                let addr = self.expr()?;
                                self.expect(TokenKind::RBracket)?;
                                Target::MemWord { name, addr }
                            }
                        }
                    } else {
                        let addr = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        Target::MemWord { name, addr }
                    }
                } else {
                    Target::Signal { name, slice: None }
                };
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign { target, value })
            }
            other => {
                Err(self.err_here(format!("expected a statement, found {}", other.describe())))
            }
        }
    }

    /// Heuristic used only at parse time to disambiguate `x[3] := ...`:
    /// without a symbol table yet, the parser cannot know whether `x` is a
    /// memory. We defer to validation: produce a `MemWord` when the name
    /// will be resolved as a memory. The trick: parse as a slice here and
    /// let validation rewrite — instead, we parse both ways. This hook
    /// exists to keep the logic in one place; it always returns `false`
    /// and validation converts single-bit slices on memories into word
    /// writes.
    fn is_assign_to_mem(&self, _name: &str) -> bool {
        false
    }

    // Precedence climbing.
    fn expr(&mut self) -> Result<Expr, RtlError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, RtlError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::LogicalOr, 1),
                TokenKind::AndAnd => (BinaryOp::LogicalAnd, 2),
                TokenKind::Pipe => (BinaryOp::Or, 3),
                TokenKind::Caret => (BinaryOp::Xor, 4),
                TokenKind::Amp => (BinaryOp::And, 5),
                TokenKind::EqEq => (BinaryOp::Eq, 6),
                TokenKind::NotEq => (BinaryOp::Ne, 6),
                TokenKind::Lt => (BinaryOp::Lt, 7),
                TokenKind::Le => (BinaryOp::Le, 7),
                TokenKind::Gt => (BinaryOp::Gt, 7),
                TokenKind::Ge => (BinaryOp::Ge, 7),
                TokenKind::Shl => (BinaryOp::Shl, 8),
                TokenKind::Shr => (BinaryOp::Shr, 8),
                TokenKind::Plus => (BinaryOp::Add, 9),
                TokenKind::Minus => (BinaryOp::Sub, 9),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, RtlError> {
        let op = match self.peek() {
            TokenKind::Tilde => Some(UnaryOp::Not),
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::LogicalNot),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, RtlError> {
        let mut e = self.primary_expr()?;
        while *self.peek() == TokenKind::LBracket {
            self.advance();
            // `[num]`, `[num:num]`, or `[expr]` (memory index).
            let save = self.pos;
            if let TokenKind::Number { value: hi, .. } = *self.peek() {
                self.advance();
                match self.peek().clone() {
                    TokenKind::Colon => {
                        self.advance();
                        let lo = self.number()?;
                        self.expect(TokenKind::RBracket)?;
                        e = Expr::Slice {
                            base: Box::new(e),
                            hi: hi as u32,
                            lo: lo as u32,
                        };
                        continue;
                    }
                    TokenKind::RBracket => {
                        self.advance();
                        e = Expr::Slice {
                            base: Box::new(e),
                            hi: hi as u32,
                            lo: hi as u32,
                        };
                        continue;
                    }
                    _ => {
                        self.pos = save;
                    }
                }
            }
            let idx = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            // `ident[expr]` is a memory read; anything else indexed by an
            // expression is an error caught in validation.
            match e {
                Expr::Ident(name) => {
                    e = Expr::MemRead {
                        name,
                        addr: Box::new(idx),
                    };
                }
                _ => {
                    return Err(self.err_here("only a memory name can be indexed by an expression"))
                }
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, RtlError> {
        match self.peek().clone() {
            TokenKind::Number { value, width } => {
                self.advance();
                Ok(Expr::Const { value, width })
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Ident(name))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                self.advance();
                let mut parts = vec![self.expr()?];
                while *self.peek() == TokenKind::Comma {
                    self.advance();
                    parts.push(self.expr()?);
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.err_here(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

fn check_width(name: &str, width: u64) -> Result<(), RtlError> {
    if width == 0 || width > 64 {
        return Err(RtlError::BadWidth {
            name: name.to_string(),
            width,
        });
    }
    Ok(())
}

// -------------------------------------------------------------------
// Validation
// -------------------------------------------------------------------

struct Symbols<'a> {
    m: &'a Machine,
}

impl<'a> Symbols<'a> {
    fn width_of_signal(&self, name: &str) -> Option<u32> {
        self.m
            .regs
            .iter()
            .map(|r| (&r.name, r.width))
            .chain(self.m.inputs.iter().map(|p| (&p.name, p.width)))
            .chain(self.m.outputs.iter().map(|p| (&p.name, p.width)))
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, w)| w)
    }

    fn is_mem(&self, name: &str) -> bool {
        self.m.mems.iter().any(|d| d.name == name)
    }

    fn is_input(&self, name: &str) -> bool {
        self.m.inputs.iter().any(|p| p.name == name)
    }

    fn is_writable(&self, name: &str) -> bool {
        self.m.regs.iter().any(|r| r.name == name) || self.m.outputs.iter().any(|p| p.name == name)
    }
}

fn validate(m: &Machine) -> Result<(), RtlError> {
    if m.states.is_empty() {
        return Err(RtlError::NoStates);
    }
    // Unique names across all declaration spaces and states.
    let mut seen: HashSet<&str> = HashSet::new();
    for name in m
        .regs
        .iter()
        .map(|r| r.name.as_str())
        .chain(m.mems.iter().map(|d| d.name.as_str()))
        .chain(m.inputs.iter().map(|p| p.name.as_str()))
        .chain(m.outputs.iter().map(|p| p.name.as_str()))
    {
        if !seen.insert(name) {
            return Err(RtlError::Redeclared {
                name: name.to_string(),
            });
        }
    }
    let mut state_names: HashSet<&str> = HashSet::new();
    for s in &m.states {
        if !state_names.insert(s.name.as_str()) {
            return Err(RtlError::Redeclared {
                name: s.name.clone(),
            });
        }
    }

    let syms = Symbols { m };
    for s in &m.states {
        validate_block(&s.body, &syms, m)?;
    }
    Ok(())
}

fn validate_block(body: &[Stmt], syms: &Symbols<'_>, m: &Machine) -> Result<(), RtlError> {
    for stmt in body {
        match stmt {
            Stmt::Assign { target, value } => {
                validate_expr(value, syms)?;
                match target {
                    Target::Signal { name, slice } => {
                        if syms.is_mem(name) {
                            return Err(RtlError::MemoryMisuse { name: name.clone() });
                        }
                        let width = syms
                            .width_of_signal(name)
                            .ok_or_else(|| RtlError::Undeclared { name: name.clone() })?;
                        if syms.is_input(name) || !syms.is_writable(name) {
                            return Err(RtlError::NotWritable { name: name.clone() });
                        }
                        if let Some((hi, lo)) = slice {
                            if hi < lo || *hi >= width {
                                return Err(RtlError::SliceOutOfRange {
                                    name: name.clone(),
                                    hi: *hi,
                                    lo: *lo,
                                    width,
                                });
                            }
                        }
                    }
                    Target::MemWord { name, addr } => {
                        if !syms.is_mem(name) {
                            // A slice-looking assignment to a register
                            // parses as MemWord when the index is an
                            // expression; diagnose precisely.
                            return if syms.width_of_signal(name).is_some() {
                                Err(RtlError::MemoryMisuse { name: name.clone() })
                            } else {
                                Err(RtlError::Undeclared { name: name.clone() })
                            };
                        }
                        validate_expr(addr, syms)?;
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                validate_expr(cond, syms)?;
                validate_block(then_body, syms, m)?;
                validate_block(else_body, syms, m)?;
            }
            Stmt::Goto(name) => {
                if m.state_index(name).is_none() {
                    return Err(RtlError::UnknownState { name: name.clone() });
                }
            }
            Stmt::Halt => {}
        }
    }
    Ok(())
}

fn validate_expr(e: &Expr, syms: &Symbols<'_>) -> Result<(), RtlError> {
    match e {
        Expr::Const { .. } => Ok(()),
        Expr::Ident(name) => {
            if syms.is_mem(name) {
                return Err(RtlError::MemoryMisuse { name: name.clone() });
            }
            syms.width_of_signal(name)
                .map(|_| ())
                .ok_or_else(|| RtlError::Undeclared { name: name.clone() })
        }
        Expr::Slice { base, hi, lo } => {
            validate_expr(base, syms)?;
            if hi < lo {
                return Err(RtlError::SliceOutOfRange {
                    name: "<expr>".into(),
                    hi: *hi,
                    lo: *lo,
                    width: 0,
                });
            }
            if let Expr::Ident(name) = base.as_ref() {
                let width = syms
                    .width_of_signal(name)
                    .ok_or_else(|| RtlError::Undeclared { name: name.clone() })?;
                if *hi >= width {
                    return Err(RtlError::SliceOutOfRange {
                        name: name.clone(),
                        hi: *hi,
                        lo: *lo,
                        width,
                    });
                }
            }
            Ok(())
        }
        Expr::MemRead { name, addr } => {
            if !syms.is_mem(name) {
                return Err(if syms.width_of_signal(name).is_some() {
                    RtlError::MemoryMisuse { name: name.clone() }
                } else {
                    RtlError::Undeclared { name: name.clone() }
                });
            }
            validate_expr(addr, syms)
        }
        Expr::Unary { expr, .. } => validate_expr(expr, syms),
        Expr::Binary { lhs, rhs, .. } => {
            validate_expr(lhs, syms)?;
            validate_expr(rhs, syms)
        }
        Expr::Concat(parts) => {
            for p in parts {
                validate_expr(p, syms)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counter() {
        let m = parse(
            "machine counter {
                reg count[8] init 5;
                port output out[8];
                state run {
                    count := count + 1;
                    out := count;
                    if count == 10 { halt; }
                }
            }",
        )
        .unwrap();
        assert_eq!(m.name, "counter");
        assert_eq!(m.regs[0].init, 5);
        assert_eq!(m.states[0].body.len(), 3);
    }

    #[test]
    fn parses_memory_machine() {
        let m = parse(
            "machine memtest {
                reg addr[4];
                reg data[8];
                mem ram[16][8];
                state s {
                    ram[addr] := data;
                    data := ram[addr + 1];
                }
            }",
        )
        .unwrap();
        assert!(matches!(
            m.states[0].body[0],
            Stmt::Assign {
                target: Target::MemWord { .. },
                ..
            }
        ));
        assert!(matches!(
            m.states[0].body[1],
            Stmt::Assign {
                value: Expr::MemRead { .. },
                ..
            }
        ));
    }

    #[test]
    fn slice_targets_and_expressions() {
        let m = parse(
            "machine s {
                reg a[8];
                reg b[4];
                state s0 {
                    a[7:4] := b;
                    b := a[3:0];
                    a[0] := b[3];
                }
            }",
        )
        .unwrap();
        match &m.states[0].body[0] {
            Stmt::Assign {
                target: Target::Signal { slice, .. },
                ..
            } => assert_eq!(*slice, Some((7, 4))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_is_sane() {
        let m =
            parse("machine p { reg a[8]; state s { a := 1 + 2 << 3 == 0 && a > 1; } }").unwrap();
        // Outermost operator must be &&.
        match &m.states[0].body[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(
                    value,
                    Expr::Binary {
                        op: BinaryOp::LogicalAnd,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let m = parse(
            "machine e { reg a[4]; state s {
                if a == 0 { a := 1; } else if a == 1 { a := 2; } else { a := 0; }
            } }",
        )
        .unwrap();
        match &m.states[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undeclared_rejected() {
        let err = parse("machine u { reg a[4]; state s { a := b; } }").unwrap_err();
        assert!(matches!(err, RtlError::Undeclared { .. }), "{err}");
    }

    #[test]
    fn goto_unknown_state_rejected() {
        let err = parse("machine g { reg a[4]; state s { goto t; } }").unwrap_err();
        assert!(matches!(err, RtlError::UnknownState { .. }));
    }

    #[test]
    fn input_not_writable() {
        let err = parse("machine i { port input x[4]; state s { x := 12; } }").unwrap_err();
        assert!(matches!(err, RtlError::NotWritable { .. }));
    }

    #[test]
    fn slice_bounds_checked() {
        let err = parse("machine b { reg a[4]; state s { a := a[4]; } }").unwrap_err();
        assert!(matches!(err, RtlError::SliceOutOfRange { .. }));
        let err = parse("machine b { reg a[4]; state s { a[5:2] := 1; } }").unwrap_err();
        assert!(matches!(err, RtlError::SliceOutOfRange { .. }));
    }

    #[test]
    fn widths_checked() {
        assert!(matches!(
            parse("machine w { reg a[0]; state s { } }"),
            Err(RtlError::BadWidth { .. })
        ));
        assert!(matches!(
            parse("machine w { reg a[65]; state s { } }"),
            Err(RtlError::BadWidth { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(matches!(
            parse("machine d { reg a[4]; reg a[4]; state s { } }"),
            Err(RtlError::Redeclared { .. })
        ));
        assert!(matches!(
            parse("machine d { reg a[4]; state s { } state s { } }"),
            Err(RtlError::Redeclared { .. })
        ));
    }

    #[test]
    fn no_states_rejected() {
        assert!(matches!(
            parse("machine n { reg a[4]; }"),
            Err(RtlError::NoStates)
        ));
    }

    #[test]
    fn memory_without_index_rejected() {
        let err = parse("machine m { mem r[8][4]; reg a[4]; state s { a := r; } }").unwrap_err();
        assert!(matches!(err, RtlError::MemoryMisuse { .. }));
    }

    #[test]
    fn register_indexed_by_expression_rejected() {
        let err = parse("machine m { reg a[8]; reg b[3]; state s { a[b] := 1; } }").unwrap_err();
        assert!(matches!(err, RtlError::MemoryMisuse { .. }), "{err}");
    }

    #[test]
    fn concat_parses() {
        let m =
            parse("machine c { reg a[4]; reg b[4]; reg w[8]; state s { w := {a, b}; } }").unwrap();
        match &m.states[0].body[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Concat(parts) if parts.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_position() {
        let err = parse("machine x {\n  reg a[4]\n}").unwrap_err();
        match err {
            RtlError::Syntax { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
