use std::error::Error;
use std::fmt;

/// Error produced by ISL parsing, validation or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// Lexical or syntactic problem.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        message: String,
    },
    /// A name was used but never declared.
    Undeclared {
        /// The name.
        name: String,
    },
    /// A name was declared twice.
    Redeclared {
        /// The name.
        name: String,
    },
    /// A bit-slice fell outside the signal's declared width.
    SliceOutOfRange {
        /// Signal name.
        name: String,
        /// Requested high bit.
        hi: u32,
        /// Requested low bit.
        lo: u32,
        /// Declared width.
        width: u32,
    },
    /// A declared width was zero or above 64.
    BadWidth {
        /// Signal name.
        name: String,
        /// Requested width.
        width: u64,
    },
    /// A `goto` named a state that does not exist.
    UnknownState {
        /// The target name.
        name: String,
    },
    /// Assignment to an input port or other non-writable object.
    NotWritable {
        /// The name assigned to.
        name: String,
    },
    /// Expression used a memory name without indexing (or vice versa).
    MemoryMisuse {
        /// The name.
        name: String,
    },
    /// A machine with no states cannot run.
    NoStates,
    /// Simulation read or wrote outside a memory's bounds.
    AddressOutOfRange {
        /// Memory name.
        name: String,
        /// The offending address.
        addr: u64,
        /// Number of words.
        words: u64,
    },
    /// Simulation exceeded its cycle budget without halting.
    CycleLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Syntax { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            RtlError::Undeclared { name } => write!(f, "`{name}` is not declared"),
            RtlError::Redeclared { name } => write!(f, "`{name}` is declared twice"),
            RtlError::SliceOutOfRange {
                name,
                hi,
                lo,
                width,
            } => write!(f, "slice [{hi}:{lo}] of `{name}` exceeds its width {width}"),
            RtlError::BadWidth { name, width } => {
                write!(f, "`{name}` has unusable width {width} (must be 1..=64)")
            }
            RtlError::UnknownState { name } => write!(f, "goto of unknown state `{name}`"),
            RtlError::NotWritable { name } => write!(f, "`{name}` cannot be assigned"),
            RtlError::MemoryMisuse { name } => {
                write!(f, "memory `{name}` must be used with an index")
            }
            RtlError::NoStates => write!(f, "machine has no states"),
            RtlError::AddressOutOfRange { name, addr, words } => {
                write!(f, "address {addr} outside `{name}` ({words} words)")
            }
            RtlError::CycleLimit { limit } => {
                write!(f, "simulation exceeded {limit} cycles without halting")
            }
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = RtlError::Undeclared { name: "pc".into() };
        assert!(e.to_string().contains("pc"));
        let e = RtlError::Syntax {
            line: 3,
            col: 7,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("3:7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
