//! # silc-rtl — an ISP-like behavioral description language
//!
//! The paper's second definition of silicon compilation "takes a
//! behavioral description of a system and maps it onto a physical
//! structure", citing the ISPS computer-description language (reference
//! \[4\]) and the ISP-compiled PDP-8 of reference \[6\]. This crate is
//! that behavioral front end: **ISL**, a small ISP-like register-transfer
//! language, with
//!
//! * a lexer/parser ([`parse`]) producing a typed AST ([`Machine`]),
//! * a validation pass (undeclared names, slice bounds, width abuse,
//!   dangling `goto`s are all compile-time errors), and
//! * a cycle-accurate simulator ([`Simulator`]) — the "verification by
//!   simulation" role the paper assigns to behavioral descriptions.
//!
//! ## Language
//!
//! ```text
//! machine counter {
//!     reg count[8];
//!     port output out[8];
//!
//!     state run {
//!         count := count + 1;
//!         out := count;
//!         if count == 10 { halt; }
//!     }
//! }
//! ```
//!
//! Semantics: one *state* executes per cycle. All register transfers in a
//! state read the **pre-cycle** values and commit together at the end of
//! the cycle (synchronous RT semantics). `goto` selects the next state
//! (default: stay); `halt` stops the machine. Values are bit-vectors up to
//! 64 bits; arithmetic wraps to the target width. Sized literals use
//! Verilog-style `12'o7777` notation.
//!
//! # Example
//!
//! ```
//! use silc_rtl::{parse, Simulator};
//!
//! let m = parse("
//!     machine counter {
//!         reg count[8];
//!         state run { count := count + 1; if count == 3 { halt; } }
//!     }
//! ")?;
//! let mut sim = Simulator::new(&m);
//! let report = sim.run(100)?;
//! assert!(report.halted);
//! assert_eq!(sim.reg("count").unwrap(), 4);
//! # Ok::<(), silc_rtl::RtlError>(())
//! ```

mod ast;
mod error;
mod fp;
mod lexer;
mod parser;
mod sim;

pub use ast::{BinaryOp, Expr, Machine, MemDecl, PortDecl, RegDecl, State, Stmt, Target, UnaryOp};
pub use error::RtlError;
pub use parser::parse;
pub use sim::{RunReport, Simulator};
