//! [`Fingerprint`] implementations over the behavioral AST.
//!
//! A [`Machine`] digest covers every declaration and statement, so any
//! ISL edit — a renamed register, a changed literal, a reordered state —
//! changes the digest, which is what lets `silc-incr` key simulation and
//! synthesis results by parsed content rather than source bytes
//! (whitespace and comment edits hit the cache).

use crate::ast::{BinaryOp, Expr, MemDecl, PortDecl, RegDecl, State, Stmt, Target, UnaryOp};
use crate::Machine;
use silc_geom::{Fingerprint, FpHasher};

impl Fingerprint for RegDecl {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        h.write_u32(self.width);
        h.write_u64(self.init);
    }
}

impl Fingerprint for MemDecl {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        h.write_u64(self.words);
        h.write_u32(self.width);
    }
}

impl Fingerprint for PortDecl {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        h.write_u32(self.width);
    }
}

impl Fingerprint for State {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        self.body.fp_hash(h);
    }
}

impl Fingerprint for Target {
    fn fp_hash(&self, h: &mut FpHasher) {
        match self {
            Target::Signal { name, slice } => {
                h.write_u8(0);
                h.write_str(name);
                match slice {
                    None => h.write_u8(0),
                    Some((hi, lo)) => {
                        h.write_u8(1);
                        h.write_u32(*hi);
                        h.write_u32(*lo);
                    }
                }
            }
            Target::MemWord { name, addr } => {
                h.write_u8(1);
                h.write_str(name);
                addr.fp_hash(h);
            }
        }
    }
}

impl Fingerprint for Stmt {
    fn fp_hash(&self, h: &mut FpHasher) {
        match self {
            Stmt::Assign { target, value } => {
                h.write_u8(0);
                target.fp_hash(h);
                value.fp_hash(h);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                h.write_u8(1);
                cond.fp_hash(h);
                then_body.fp_hash(h);
                else_body.fp_hash(h);
            }
            Stmt::Goto(state) => {
                h.write_u8(2);
                h.write_str(state);
            }
            Stmt::Halt => h.write_u8(3),
        }
    }
}

impl Fingerprint for UnaryOp {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u8(match self {
            UnaryOp::Not => 0,
            UnaryOp::Neg => 1,
            UnaryOp::LogicalNot => 2,
        });
    }
}

impl Fingerprint for BinaryOp {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u8(match self {
            BinaryOp::LogicalOr => 0,
            BinaryOp::LogicalAnd => 1,
            BinaryOp::Or => 2,
            BinaryOp::Xor => 3,
            BinaryOp::And => 4,
            BinaryOp::Eq => 5,
            BinaryOp::Ne => 6,
            BinaryOp::Lt => 7,
            BinaryOp::Le => 8,
            BinaryOp::Gt => 9,
            BinaryOp::Ge => 10,
            BinaryOp::Shl => 11,
            BinaryOp::Shr => 12,
            BinaryOp::Add => 13,
            BinaryOp::Sub => 14,
        });
    }
}

impl Fingerprint for Expr {
    fn fp_hash(&self, h: &mut FpHasher) {
        match self {
            Expr::Const { value, width } => {
                h.write_u8(0);
                h.write_u64(*value);
                match width {
                    None => h.write_u8(0),
                    Some(w) => {
                        h.write_u8(1);
                        h.write_u32(*w);
                    }
                }
            }
            Expr::Ident(name) => {
                h.write_u8(1);
                h.write_str(name);
            }
            Expr::Slice { base, hi, lo } => {
                h.write_u8(2);
                base.fp_hash(h);
                h.write_u32(*hi);
                h.write_u32(*lo);
            }
            Expr::MemRead { name, addr } => {
                h.write_u8(3);
                h.write_str(name);
                addr.fp_hash(h);
            }
            Expr::Unary { op, expr } => {
                h.write_u8(4);
                op.fp_hash(h);
                expr.fp_hash(h);
            }
            Expr::Binary { op, lhs, rhs } => {
                h.write_u8(5);
                op.fp_hash(h);
                lhs.fp_hash(h);
                rhs.fp_hash(h);
            }
            Expr::Concat(parts) => {
                h.write_u8(6);
                parts.fp_hash(h);
            }
        }
    }
}

impl Fingerprint for Machine {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        self.regs.fp_hash(h);
        self.mems.fp_hash(h);
        self.inputs.fp_hash(h);
        self.outputs.fp_hash(h);
        self.states.fp_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const COUNTER: &str = "
        machine counter {
            reg n[8];
            port output out[8];
            state run {
                n := n + 1;
                out := n;
                if n == 10 { halt; }
                goto run;
            }
        }
    ";

    #[test]
    fn whitespace_does_not_matter() {
        let a = parse(COUNTER).unwrap();
        let compact = COUNTER.split_whitespace().collect::<Vec<_>>().join(" ");
        let b = parse(&compact).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn semantic_edits_change_the_digest() {
        let base = parse(COUNTER).unwrap().fingerprint();
        let edited = parse(&COUNTER.replace("n == 10", "n == 11")).unwrap();
        assert_ne!(edited.fingerprint(), base);
        let widened = parse(&COUNTER.replace("reg n[8]", "reg n[9]")).unwrap();
        assert_ne!(widened.fingerprint(), base);
    }
}
