use std::fmt;

/// A register declaration: `reg name[width];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDecl {
    /// Register name.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
    /// Initial value (defaults to 0).
    pub init: u64,
}

/// A memory declaration: `mem name[words][width];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDecl {
    /// Memory name.
    pub name: String,
    /// Number of words.
    pub words: u64,
    /// Word width in bits (1..=64).
    pub width: u32,
}

/// A port declaration: `port input name[width];` or `port output ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
}

/// One control state and its register-transfer body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// State name (unique).
    pub name: String,
    /// Statements executed each cycle spent in this state.
    pub body: Vec<Stmt>,
}

/// An assignment destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A register or output port, optionally a bit slice of it:
    /// `name[hi:lo] := ...`.
    Signal {
        /// Register or output name.
        name: String,
        /// Slice bounds (inclusive, `hi >= lo`); `None` writes the whole
        /// signal.
        slice: Option<(u32, u32)>,
    },
    /// A memory word: `name[addr] := ...`.
    MemWord {
        /// Memory name.
        name: String,
        /// Address expression.
        addr: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target := expr;` — a register transfer (committed at end of
    /// cycle).
    Assign {
        /// Destination.
        target: Target,
        /// Source expression (evaluated on pre-cycle values).
        value: Expr,
    },
    /// `if cond { ... } else { ... }` — `else` optional.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Not-taken branch.
        else_body: Vec<Stmt>,
    },
    /// `goto state;` — selects the next state.
    Goto(String),
    /// `halt;` — stops the machine at the end of this cycle.
    Halt,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Bitwise complement `~` (masked to operand width).
    Not,
    /// Arithmetic negation `-` (two's complement in operand width).
    Neg,
    /// Logical not `!` (1-bit result).
    LogicalNot,
}

/// Binary operators, loosest-binding first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `||` — logical or (1-bit).
    LogicalOr,
    /// `&&` — logical and (1-bit).
    LogicalAnd,
    /// `|` — bitwise or.
    Or,
    /// `^` — bitwise xor.
    Xor,
    /// `&` — bitwise and.
    And,
    /// `==` (1-bit).
    Eq,
    /// `!=` (1-bit).
    Ne,
    /// `<` unsigned (1-bit).
    Lt,
    /// `<=` unsigned (1-bit).
    Le,
    /// `>` unsigned (1-bit).
    Gt,
    /// `>=` unsigned (1-bit).
    Ge,
    /// `<<` — left shift.
    Shl,
    /// `>>` — logical right shift.
    Shr,
    /// `+` — addition (wraps to result width).
    Add,
    /// `-` — subtraction (wraps).
    Sub,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal; `width` is `Some` for sized literals like `12'o7777`.
    Const {
        /// The value.
        value: u64,
        /// Declared width, if sized.
        width: Option<u32>,
    },
    /// A register, input port, or output port read.
    Ident(String),
    /// `base[hi:lo]` or `base[bit]` (hi == lo).
    Slice {
        /// The sliced expression.
        base: Box<Expr>,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// `mem[addr]`.
    MemRead {
        /// Memory name.
        name: String,
        /// Address expression.
        addr: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Bit concatenation `{ a, b, c }` — first element is most
    /// significant.
    Concat(Vec<Expr>),
}

/// A complete behavioral machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Machine name.
    pub name: String,
    /// Register declarations.
    pub regs: Vec<RegDecl>,
    /// Memory declarations.
    pub mems: Vec<MemDecl>,
    /// Input ports.
    pub inputs: Vec<PortDecl>,
    /// Output ports.
    pub outputs: Vec<PortDecl>,
    /// Control states; the first is the reset state.
    pub states: Vec<State>,
}

impl Machine {
    /// Finds a register by name.
    pub fn reg(&self, name: &str) -> Option<&RegDecl> {
        self.regs.iter().find(|r| r.name == name)
    }

    /// Finds a memory by name.
    pub fn mem(&self, name: &str) -> Option<&MemDecl> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// Finds a state index by name.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s.name == name)
    }

    /// Total state count.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Sum of register widths — the machine's storage bit count.
    pub fn register_bits(&self) -> u64 {
        self.regs.iter().map(|r| u64::from(r.width)).sum()
    }

    /// Total memory bits.
    pub fn memory_bits(&self) -> u64 {
        self.mems.iter().map(|m| m.words * u64::from(m.width)).sum()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} ({} regs, {} mems, {} states)",
            self.name,
            self.regs.len(),
            self.mems.len(),
            self.states.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Machine {
        Machine {
            name: "t".into(),
            regs: vec![RegDecl {
                name: "a".into(),
                width: 8,
                init: 0,
            }],
            mems: vec![MemDecl {
                name: "m".into(),
                words: 16,
                width: 4,
            }],
            inputs: vec![],
            outputs: vec![],
            states: vec![State {
                name: "s0".into(),
                body: vec![],
            }],
        }
    }

    #[test]
    fn lookups() {
        let m = tiny();
        assert_eq!(m.reg("a").unwrap().width, 8);
        assert!(m.reg("b").is_none());
        assert_eq!(m.mem("m").unwrap().words, 16);
        assert_eq!(m.state_index("s0"), Some(0));
        assert_eq!(m.state_index("s9"), None);
    }

    #[test]
    fn bit_accounting() {
        let m = tiny();
        assert_eq!(m.register_bits(), 8);
        assert_eq!(m.memory_bits(), 64);
    }

    #[test]
    fn display_summarises() {
        assert_eq!(tiny().to_string(), "machine t (1 regs, 1 mems, 1 states)");
    }
}
