use crate::ast::*;
use crate::RtlError;
use std::collections::HashMap;

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Result of [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Cycles actually executed.
    pub cycles: u64,
    /// True when the machine executed `halt`.
    pub halted: bool,
}

/// A cycle-accurate interpreter for ISL machines.
///
/// Each [`step`](Simulator::step) runs the current state's body: all right
/// hand sides observe pre-cycle storage, all writes commit together at the
/// end of the cycle — the register-transfer semantics an ISP description
/// promises and the synthesized hardware implements.
///
/// # Example
///
/// ```
/// use silc_rtl::{parse, Simulator};
/// let m = parse("
///     machine swap {
///         reg a[8] init 1;
///         reg b[8] init 2;
///         state s { a := b; b := a; halt; }
///     }
/// ")?;
/// let mut sim = Simulator::new(&m);
/// sim.run(10)?;
/// // Swap happened atomically: both reads saw pre-cycle values.
/// assert_eq!(sim.reg("a"), Some(2));
/// assert_eq!(sim.reg("b"), Some(1));
/// # Ok::<(), silc_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    machine: Machine,
    regs: HashMap<String, u64>,
    mems: HashMap<String, Vec<u64>>,
    inputs: HashMap<String, u64>,
    outputs: HashMap<String, u64>,
    state: usize,
    cycle: u64,
    halted: bool,
}

impl Simulator {
    /// Creates a simulator in the machine's reset configuration: registers
    /// at their `init` values, memories zeroed, first state current.
    pub fn new(machine: &Machine) -> Simulator {
        let regs = machine
            .regs
            .iter()
            .map(|r| (r.name.clone(), r.init & mask(r.width)))
            .collect();
        let mems = machine
            .mems
            .iter()
            .map(|m| (m.name.clone(), vec![0; m.words as usize]))
            .collect();
        let inputs = machine.inputs.iter().map(|p| (p.name.clone(), 0)).collect();
        let outputs = machine
            .outputs
            .iter()
            .map(|p| (p.name.clone(), 0))
            .collect();
        Simulator {
            machine: machine.clone(),
            regs,
            mems,
            inputs,
            outputs,
            state: 0,
            cycle: 0,
            halted: false,
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True after `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Name of the current control state.
    pub fn state_name(&self) -> &str {
        &self.machine.states[self.state].name
    }

    /// Reads a register.
    pub fn reg(&self, name: &str) -> Option<u64> {
        self.regs.get(name).copied()
    }

    /// Reads an output port.
    pub fn output(&self, name: &str) -> Option<u64> {
        self.outputs.get(name).copied()
    }

    /// Drives an input port (value is masked to the port width).
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] naming an unknown port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let decl = self
            .machine
            .inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| RtlError::Undeclared {
                name: name.to_string(),
            })?;
        self.inputs
            .insert(name.to_string(), value & mask(decl.width));
        Ok(())
    }

    /// Overwrites a register (for test setup; value is masked).
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] naming an unknown register.
    pub fn set_reg(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let decl = self
            .machine
            .regs
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| RtlError::Undeclared {
                name: name.to_string(),
            })?;
        self.regs.insert(name.to_string(), value & mask(decl.width));
        Ok(())
    }

    /// Reads a memory word.
    pub fn mem_word(&self, name: &str, addr: u64) -> Option<u64> {
        self.mems.get(name)?.get(addr as usize).copied()
    }

    /// Loads `data` into a memory starting at word 0 (for program
    /// loading). Words are masked to the memory width.
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] for an unknown memory;
    /// [`RtlError::AddressOutOfRange`] when `data` overruns it (nothing
    /// is written).
    pub fn load_mem(&mut self, name: &str, data: &[u64]) -> Result<(), RtlError> {
        let decl = self
            .machine
            .mems
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| RtlError::Undeclared {
                name: name.to_string(),
            })?;
        let w = mask(decl.width);
        let storage = self.mems.get_mut(name).expect("declared memories exist");
        if data.len() > storage.len() {
            return Err(RtlError::AddressOutOfRange {
                name: name.to_string(),
                addr: data.len() as u64 - 1,
                words: decl.words,
            });
        }
        for (slot, &v) in storage.iter_mut().zip(data) {
            *slot = v & w;
        }
        Ok(())
    }

    /// Executes one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::AddressOutOfRange`] on a bad memory access.
    /// A halted machine steps as a no-op.
    pub fn step(&mut self) -> Result<(), RtlError> {
        if self.halted {
            return Ok(());
        }
        let body = self.machine.states[self.state].body.clone();
        let mut effects = Effects::default();
        self.exec_block(&body, &mut effects)?;

        // Commit.
        for (name, value) in effects.reg_writes {
            self.regs.insert(name, value);
        }
        for (name, value) in effects.out_writes {
            self.outputs.insert(name, value);
        }
        for (name, addr, value) in effects.mem_writes {
            let storage = self.mems.get_mut(&name).expect("validated");
            storage[addr as usize] = value;
        }
        if let Some(next) = effects.next_state {
            self.state = next;
        }
        if effects.halt {
            self.halted = true;
        }
        self.cycle += 1;
        Ok(())
    }

    /// Evaluates an arbitrary expression against the *current* (pre-cycle)
    /// storage, returning its value. The expression must only reference
    /// names declared in this machine.
    ///
    /// Used by the control-store generator's cross-checks: a condition
    /// expression can be probed exactly as the hardware would sample it.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::AddressOutOfRange`] on a bad memory access.
    ///
    /// # Panics
    ///
    /// Panics on names not declared in the machine (parse-validated
    /// expressions never do this).
    pub fn eval_expr(&self, e: &Expr) -> Result<u64, RtlError> {
        self.eval(e).map(|(v, _)| v)
    }

    /// Runs until `halt` or until `max_cycles` have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulator::step`] errors; running out of budget is
    /// *not* an error (the report's `halted` field says which happened).
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, RtlError> {
        let mut cycles = 0;
        while !self.halted && cycles < max_cycles {
            self.step()?;
            cycles += 1;
        }
        Ok(RunReport {
            cycles,
            halted: self.halted,
        })
    }

    fn exec_block(&self, body: &[Stmt], effects: &mut Effects) -> Result<(), RtlError> {
        for stmt in body {
            match stmt {
                Stmt::Assign { target, value } => {
                    let (v, _) = self.eval(value)?;
                    self.apply_assign(target, v, effects)?;
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let (c, _) = self.eval(cond)?;
                    if c != 0 {
                        self.exec_block(then_body, effects)?;
                    } else {
                        self.exec_block(else_body, effects)?;
                    }
                }
                Stmt::Goto(name) => {
                    effects.next_state = Some(self.machine.state_index(name).expect("validated"));
                }
                Stmt::Halt => effects.halt = true,
            }
        }
        Ok(())
    }

    fn apply_assign(
        &self,
        target: &Target,
        value: u64,
        effects: &mut Effects,
    ) -> Result<(), RtlError> {
        match target {
            Target::Signal { name, slice } => {
                let (is_output, width) =
                    if let Some(r) = self.machine.regs.iter().find(|r| r.name == *name) {
                        (false, r.width)
                    } else {
                        let p = self
                            .machine
                            .outputs
                            .iter()
                            .find(|p| p.name == *name)
                            .expect("validated");
                        (true, p.width)
                    };
                let book = if is_output {
                    &mut effects.out_writes
                } else {
                    &mut effects.reg_writes
                };
                let current = book
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| {
                        if is_output {
                            self.outputs[name]
                        } else {
                            self.regs[name]
                        }
                    });
                let newval = match slice {
                    None => value & mask(width),
                    Some((hi, lo)) => {
                        let w = hi - lo + 1;
                        let field = (value & mask(w)) << lo;
                        let keep = !(mask(w) << lo);
                        (current & keep) | field
                    }
                };
                book.retain(|(n, _)| n != name);
                book.push((name.clone(), newval));
            }
            Target::MemWord { name, addr } => {
                let (a, _) = self.eval(addr)?;
                let decl = self.machine.mem(name).expect("validated");
                if a >= decl.words {
                    return Err(RtlError::AddressOutOfRange {
                        name: name.clone(),
                        addr: a,
                        words: decl.words,
                    });
                }
                let v = value & mask(decl.width);
                effects
                    .mem_writes
                    .retain(|(n, ad, _)| !(n == name && *ad == a));
                effects.mem_writes.push((name.clone(), a, v));
            }
        }
        Ok(())
    }

    /// Evaluates an expression against pre-cycle storage, returning
    /// `(value, width)`.
    fn eval(&self, e: &Expr) -> Result<(u64, u32), RtlError> {
        match e {
            Expr::Const { value, width } => {
                Ok((value & mask(width.unwrap_or(64)), width.unwrap_or(64)))
            }
            Expr::Ident(name) => {
                if let Some(r) = self.machine.regs.iter().find(|r| r.name == *name) {
                    Ok((self.regs[name], r.width))
                } else if let Some(p) = self.machine.inputs.iter().find(|p| p.name == *name) {
                    Ok((self.inputs[name], p.width))
                } else {
                    let p = self
                        .machine
                        .outputs
                        .iter()
                        .find(|p| p.name == *name)
                        .expect("validated");
                    Ok((self.outputs[name], p.width))
                }
            }
            Expr::Slice { base, hi, lo } => {
                let (v, _) = self.eval(base)?;
                let w = hi - lo + 1;
                Ok(((v >> lo) & mask(w), w))
            }
            Expr::MemRead { name, addr } => {
                let (a, _) = self.eval(addr)?;
                let decl = self.machine.mem(name).expect("validated");
                if a >= decl.words {
                    return Err(RtlError::AddressOutOfRange {
                        name: name.clone(),
                        addr: a,
                        words: decl.words,
                    });
                }
                Ok((self.mems[name][a as usize], decl.width))
            }
            Expr::Unary { op, expr } => {
                let (v, w) = self.eval(expr)?;
                let out = match op {
                    UnaryOp::Not => (!v) & mask(w),
                    UnaryOp::Neg => v.wrapping_neg() & mask(w),
                    UnaryOp::LogicalNot => u64::from(v == 0),
                };
                let ow = if *op == UnaryOp::LogicalNot { 1 } else { w };
                Ok((out, ow))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (a, wa) = self.eval(lhs)?;
                let (b, wb) = self.eval(rhs)?;
                let w = wa.max(wb);
                let (v, ow) = match op {
                    BinaryOp::Add => (a.wrapping_add(b) & mask(w), w),
                    BinaryOp::Sub => (a.wrapping_sub(b) & mask(w), w),
                    BinaryOp::And => (a & b, w),
                    BinaryOp::Or => (a | b, w),
                    BinaryOp::Xor => (a ^ b, w),
                    BinaryOp::Shl => {
                        if b >= 64 {
                            (0, wa)
                        } else {
                            ((a << b) & mask(wa), wa)
                        }
                    }
                    BinaryOp::Shr => {
                        if b >= 64 {
                            (0, wa)
                        } else {
                            (a >> b, wa)
                        }
                    }
                    BinaryOp::Eq => (u64::from(a == b), 1),
                    BinaryOp::Ne => (u64::from(a != b), 1),
                    BinaryOp::Lt => (u64::from(a < b), 1),
                    BinaryOp::Le => (u64::from(a <= b), 1),
                    BinaryOp::Gt => (u64::from(a > b), 1),
                    BinaryOp::Ge => (u64::from(a >= b), 1),
                    BinaryOp::LogicalAnd => (u64::from(a != 0 && b != 0), 1),
                    BinaryOp::LogicalOr => (u64::from(a != 0 || b != 0), 1),
                };
                Ok((v, ow))
            }
            Expr::Concat(parts) => {
                let mut v: u64 = 0;
                let mut w: u32 = 0;
                for p in parts {
                    let (pv, pw) = self.eval(p)?;
                    v = (v << pw) | (pv & mask(pw));
                    w += pw;
                }
                Ok((v, w.min(64)))
            }
        }
    }
}

#[derive(Default)]
struct Effects {
    reg_writes: Vec<(String, u64)>,
    out_writes: Vec<(String, u64)>,
    mem_writes: Vec<(String, u64, u64)>,
    next_state: Option<usize>,
    halt: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sim(src: &str) -> Simulator {
        Simulator::new(&parse(src).unwrap())
    }

    #[test]
    fn counter_counts_and_halts() {
        let mut s = sim("machine c { reg n[8]; state r { n := n + 1; if n == 5 { halt; } } }");
        let report = s.run(100).unwrap();
        assert!(report.halted);
        assert_eq!(report.cycles, 6);
        assert_eq!(s.reg("n"), Some(6));
    }

    #[test]
    fn transfers_are_parallel() {
        let mut s = sim(
            "machine swap { reg a[8] init 3; reg b[8] init 9; state s { a := b; b := a; halt; } }",
        );
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(9));
        assert_eq!(s.reg("b"), Some(3));
    }

    #[test]
    fn arithmetic_wraps_to_width() {
        let mut s = sim("machine w { reg a[4] init 15; state s { a := a + 1; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(0));
    }

    #[test]
    fn goto_changes_state() {
        let mut s = sim("machine g { reg a[4];
                state one { a := 1; goto two; }
                state two { a := 2; halt; } }");
        assert_eq!(s.state_name(), "one");
        s.step().unwrap();
        assert_eq!(s.state_name(), "two");
        assert_eq!(s.reg("a"), Some(1));
        s.step().unwrap();
        assert!(s.is_halted());
        assert_eq!(s.reg("a"), Some(2));
    }

    #[test]
    fn staying_in_state_by_default() {
        let mut s = sim("machine stay { reg a[8]; state s { a := a + 1; } }");
        let report = s.run(7).unwrap();
        assert!(!report.halted);
        assert_eq!(report.cycles, 7);
        assert_eq!(s.reg("a"), Some(7));
    }

    #[test]
    fn memory_read_write() {
        let mut s = sim("machine m { reg a[4]; reg d[8]; mem ram[16][8];
                state w { ram[a] := 42; goto r; }
                state r { d := ram[a]; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("d"), Some(42));
        assert_eq!(s.mem_word("ram", 0), Some(42));
    }

    #[test]
    fn memory_bounds_checked() {
        let mut s = sim("machine m { reg a[8] init 200; reg d[8]; mem ram[16][8];
                state r { d := ram[a]; } }");
        let err = s.step().unwrap_err();
        assert!(matches!(err, RtlError::AddressOutOfRange { addr: 200, .. }));
    }

    #[test]
    fn slice_read_and_write() {
        let mut s = sim("machine sl { reg a[8] init 0; reg b[8] init 0xAB;
                state s { a[7:4] := b[3:0]; a[0] := 1; halt; } }");
        s.run(10).unwrap();
        // High nibble gets 0xB, bit 0 set: 0xB1.
        assert_eq!(s.reg("a"), Some(0xB1));
    }

    #[test]
    fn io_ports() {
        let mut s = sim("machine io { port input x[8]; port output y[8];
                state s { y := x + 1; halt; } }");
        s.set_input("x", 41).unwrap();
        assert!(matches!(
            s.set_input("nope", 1),
            Err(RtlError::Undeclared { name }) if name == "nope"
        ));
        s.run(10).unwrap();
        assert_eq!(s.output("y"), Some(42));
    }

    #[test]
    fn concat_and_ops() {
        let mut s = sim(
            "machine c { reg hi[4] init 0xA; reg lo[4] init 0x5; reg w[8];
                state s { w := {hi, lo} ^ 0xFF; halt; } }",
        );
        s.run(10).unwrap();
        assert_eq!(s.reg("w"), Some(0xA5 ^ 0xFF));
    }

    #[test]
    fn conditions_and_comparisons() {
        let mut s = sim("machine cmp { reg a[8] init 5; reg r[4];
                state s {
                    if a >= 5 && a < 6 { r := 1; } else { r := 2; }
                    halt;
                } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("r"), Some(1));
    }

    #[test]
    fn unary_ops() {
        let mut s = sim("machine u { reg a[4] init 0b1010; reg n[4]; reg z[1];
                state s { n := ~a; z := !a; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("n"), Some(0b0101));
        assert_eq!(s.reg("z"), Some(0));
    }

    #[test]
    fn load_mem_and_bounds() {
        let m = parse("machine l { reg a[4]; mem ram[4][8]; state s { halt; } }").unwrap();
        let mut s = Simulator::new(&m);
        s.load_mem("ram", &[1, 2, 3]).unwrap();
        assert!(matches!(
            s.load_mem("ram", &[0; 5]),
            Err(RtlError::AddressOutOfRange {
                addr: 4,
                words: 4,
                ..
            })
        ));
        assert!(matches!(
            s.load_mem("nope", &[1]),
            Err(RtlError::Undeclared { .. })
        ));
        assert_eq!(s.mem_word("ram", 2), Some(3));
    }

    #[test]
    fn halted_machine_is_inert() {
        let mut s = sim("machine h { reg a[4]; state s { a := a + 1; halt; } }");
        s.run(10).unwrap();
        let a = s.reg("a");
        s.step().unwrap();
        assert_eq!(s.reg("a"), a);
    }

    #[test]
    fn run_report_on_budget_exhaustion() {
        let mut s = sim("machine b { reg a[8]; state s { a := a + 1; } }");
        let report = s.run(3).unwrap();
        assert!(!report.halted);
        assert_eq!(report.cycles, 3);
    }

    #[test]
    fn last_write_wins_within_cycle() {
        let mut s = sim("machine lw { reg a[8]; state s { a := 1; a := 2; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(2));
    }

    #[test]
    fn sized_literals_mask() {
        let mut s = sim("machine sz { reg a[12]; state s { a := 12'o7777; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(0o7777));
    }
}
