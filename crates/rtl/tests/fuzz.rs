//! Robustness: the ISL parser returns diagnostics, never panics.

use proptest::prelude::*;
use silc_rtl::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~\n]{0,200}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_isl_like_soup(
        input in "(machine|reg|mem|state|if|else|goto|halt|:=|==|\\[|\\]|\\{|\\}|;|[a-z]{1,4}|[0-9]{1,4}| |\n){0,60}",
    ) {
        let _ = parse(&input);
    }
}
