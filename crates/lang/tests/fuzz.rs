//! Robustness: the SIL compiler returns diagnostics, never panics.

use proptest::prelude::*;
use silc_lang::Compiler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn compiler_never_panics_on_ascii(input in "[ -~\n]{0,200}") {
        let _ = Compiler::new().compile(&input);
    }

    #[test]
    fn compiler_never_panics_on_sil_like_soup(
        input in "(cell|fn|type|let|for|if|place|array|box|wire|port|at|step|count|metal|diff|poly|\\(|\\)|\\{|\\}|;|,|[a-z]{1,3}|[0-9]{1,3}| |\n){0,60}",
    ) {
        let _ = Compiler::new().compile(&input);
    }
}
