//! The standard-cell prelude: every `std_*` cell compiles, is DRC-clean,
//! and extracts to the device structure it claims.

use silc_drc::{check, RuleSet};
use silc_lang::Compiler;

#[test]
fn every_prelude_cell_is_drc_clean() {
    for cell in [
        "std_contact_md",
        "std_contact_mp",
        "std_butting",
        "std_pullup",
        "std_pass",
        "std_inv",
    ] {
        let source = format!("place {cell}() at (0, 0);");
        let design = Compiler::new()
            .compile(&source)
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let report = check(&design.library, design.top, &RuleSet::mead_conway_nmos())
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        assert!(report.is_clean(), "{cell}: {report}");
    }
}

#[test]
fn prelude_inverter_extracts_and_inverts() {
    let design = Compiler::new()
        .compile("place std_inv() at (0, 0);")
        .expect("compiles");
    // Extract the *cell*, whose ports name the nets.
    let cell_id = design.library.cell_by_name("std_inv").expect("in library");
    let extracted = silc_extract::extract(&design.library, cell_id).expect("extracts");
    assert_eq!(extracted.transistor_count(), 2);
    let low = silc_extract::switch_level_eval(&extracted.netlist, &[("inp", false)], "vdd", "gnd")
        .expect("settles");
    assert_eq!(low["out"], silc_extract::Level::One);
    let high = silc_extract::switch_level_eval(&extracted.netlist, &[("inp", true)], "vdd", "gnd")
        .expect("settles");
    assert_eq!(high["out"], silc_extract::Level::Zero);
}

#[test]
fn butting_contact_joins_poly_and_diffusion() {
    let design = Compiler::new()
        .compile("place std_butting() at (0, 0);")
        .expect("compiles");
    let cell_id = design
        .library
        .cell_by_name("std_butting")
        .expect("in library");
    let extracted = silc_extract::extract(&design.library, cell_id).expect("extracts");
    // No transistor, and poly+diff+metal are ONE net.
    assert_eq!(extracted.transistor_count(), 0);
    assert_eq!(extracted.nets, 1);
}

#[test]
fn user_cells_compose_with_prelude() {
    // Two pass transistors and a pullup wired side by side.
    let design = Compiler::new()
        .compile(
            "cell gate_pair() {
                place std_pass() at (0, 0);
                place std_pass() at (0, 12);
                place std_pullup() at (20, 6);
            }
            place gate_pair() at (0, 0);",
        )
        .expect("compiles");
    let report =
        check(&design.library, design.top, &RuleSet::mead_conway_nmos()).expect("root exists");
    assert!(report.is_clean(), "{report}");
    let extracted = silc_extract::extract(&design.library, design.top).expect("extracts");
    assert_eq!(extracted.transistor_count(), 3); // 2 pass + 1 pullup
}

#[test]
fn user_redefinition_of_std_cells_is_rejected() {
    let err = Compiler::new()
        .compile("cell std_inv() { box metal (0,0) (4,4); } place std_inv() at (0,0);")
        .unwrap_err();
    assert!(err.to_string().contains("std_inv"), "{err}");
}
