use silc_geom::Point;
use std::fmt;

/// A SIL runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer (lambda distances, counts, ...).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (layer names, labels).
    Str(String),
    /// A point on the lambda grid.
    Point(Point),
    /// A list of values.
    List(Vec<Value>),
    /// A record of a user-declared type — the paper's "data type
    /// extension".
    Record {
        /// The declared type's name.
        type_name: String,
        /// Field values in declaration order.
        fields: Vec<(String, Value)>,
    },
}

impl Value {
    /// A short description of the value's type for diagnostics.
    pub fn type_name(&self) -> String {
        match self {
            Value::Int(_) => "int".into(),
            Value::Bool(_) => "bool".into(),
            Value::Str(_) => "string".into(),
            Value::Point(_) => "point".into(),
            Value::List(_) => "list".into(),
            Value::Record { type_name, .. } => type_name.clone(),
        }
    }

    /// A canonical key string used to memoize cell elaborations per
    /// argument tuple.
    pub fn memo_key(&self) -> String {
        match self {
            Value::Int(v) => format!("i{v}"),
            Value::Bool(b) => format!("b{b}"),
            Value::Str(s) => format!("s{s}"),
            Value::Point(p) => format!("p{},{}", p.x, p.y),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::memo_key).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Record { type_name, fields } => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(n, v)| format!("{n}={}", v.memo_key()))
                    .collect();
                format!("{type_name}{{{}}}", inner.join(","))
            }
        }
    }

    /// True if the value is truthy (`if` condition semantics: only a bool
    /// is accepted, this helper reports the check).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Point view.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            Value::Point(p) => Some(*p),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Point(p) => write!(f, "{p}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record { type_name, fields } => {
                write!(f, "{type_name} {{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, " {n}: {v}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_keys_distinguish_values() {
        let a = Value::Int(4);
        let b = Value::Int(5);
        assert_ne!(a.memo_key(), b.memo_key());
        let l1 = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let l2 = Value::List(vec![Value::Int(12)]);
        assert_ne!(l1.memo_key(), l2.memo_key());
    }

    #[test]
    fn memo_keys_stable_for_equal_values() {
        let r1 = Value::Record {
            type_name: "pt".into(),
            fields: vec![("x".into(), Value::Int(1))],
        };
        let r2 = r1.clone();
        assert_eq!(r1.memo_key(), r2.memo_key());
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(
            Value::Point(Point::new(1, 2)).as_point(),
            Some(Point::new(1, 2))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
        let r = Value::Record {
            type_name: "pt".into(),
            fields: vec![("x".into(), Value::Int(1))],
        };
        assert_eq!(r.to_string(), "pt { x: 1 }");
        assert_eq!(r.type_name(), "pt");
    }
}
