use std::error::Error;
use std::fmt;

/// Error produced while compiling or running a SIL program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LangError {
    /// Lexical or grammatical problem.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        message: String,
    },
    /// A runtime problem during elaboration, annotated with the source
    /// line of the statement being executed.
    Eval {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A cell elaboration recursed into itself.
    RecursiveCell {
        /// The cell at fault.
        name: String,
    },
}

impl LangError {
    /// Creates an evaluation error.
    pub fn eval(line: usize, message: impl Into<String>) -> LangError {
        LangError::Eval {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Syntax { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            LangError::Eval { line, message } => {
                write!(f, "error on line {line}: {message}")
            }
            LangError::RecursiveCell { name } => {
                write!(f, "cell `{name}` places itself (directly or indirectly)")
            }
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::Syntax {
            line: 4,
            col: 9,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("4:9"));
        let e = LangError::eval(7, "division by zero");
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LangError>();
    }
}
