//! # silc-lang — SIL, an extensible structural design language
//!
//! The paper's session presents "an extensible language system with
//! associated programming environment", showing that "structured designs
//! can be described by structured programs", that "data type extensions
//! provide a method of putting together hierarchical descriptions", and
//! that parameterised specification pays off in chip assembly. SIL is that
//! language:
//!
//! * **structured programs** — `let`, `for`, `if`, functions, lexical
//!   scoping;
//! * **parameterised cells** — `cell shifter(bits, width = 2) { ... }`,
//!   elaborated on demand and **memoized per argument tuple**, so the
//!   emitted hierarchy stays shared (one definition per distinct variant,
//!   exactly like a CIF symbol);
//! * **data-type extension** — user `type` records compose geometric
//!   facts (pitches, port bundles) into named wholes;
//! * **repetition** — `array cell() at (0,0) step (10,0) count 8;`
//! * **hierarchy** — `place` composes previously defined cells;
//! * geometry primitives `box`, `wire`, `poly`, `port` on the Mead–Conway
//!   layers.
//!
//! Compilation (the *first definition* of silicon compilation) turns a SIL
//! program into a [`silc_layout::Library`]; `silc-cif` then turns that
//! into manufacturing data.
//!
//! # Example
//!
//! ```
//! use silc_lang::Compiler;
//!
//! # fn main() -> Result<(), silc_lang::LangError> {
//! let design = Compiler::new().compile(r#"
//!     cell bit(w) {
//!         box diff (0, 0) (w, 4);
//!     }
//!     cell row(n) {
//!         array bit(2) at (0, 0) step (6, 0) count n;
//!     }
//!     place row(8) at (0, 0);
//! "#)?;
//! let flat = silc_layout::flatten(&design.library, design.top).expect("valid root");
//! assert_eq!(flat.len(), 8);
//! # Ok(())
//! # }
//! ```

mod ast;
mod error;
mod interp;
mod lexer;
mod parser;
mod value;

pub use error::LangError;
pub use interp::{Compiler, Design, PRELUDE};
pub use value::Value;
