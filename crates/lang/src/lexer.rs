use crate::LangError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    // Keywords.
    Cell,
    Fn,
    Type,
    Let,
    For,
    In,
    If,
    Else,
    Return,
    Box_,
    Wire,
    Poly,
    Port,
    Place,
    Array,
    At,
    Step,
    Count,
    Rot,
    MirrorX,
    MirrorY,
    True,
    False,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    DotDot,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Eof,
}

impl Tok {
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("number {v}"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Eof => "end of input".into(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Tok::Cell => "cell",
            Tok::Fn => "fn",
            Tok::Type => "type",
            Tok::Let => "let",
            Tok::For => "for",
            Tok::In => "in",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::Return => "return",
            Tok::Box_ => "box",
            Tok::Wire => "wire",
            Tok::Poly => "poly",
            Tok::Port => "port",
            Tok::Place => "place",
            Tok::Array => "array",
            Tok::At => "at",
            Tok::Step => "step",
            Tok::Count => "count",
            Tok::Rot => "rot",
            Tok::MirrorX => "mirrorx",
            Tok::MirrorY => "mirrory",
            Tok::True => "true",
            Tok::False => "false",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::DotDot => "..",
            Tok::Arrow => "->",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Bang => "!",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Ident(_) | Tok::Int(_) | Tok::Str(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// Tokenizes SIL source. Comments run from `//` to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                col += 1;
            }
            b'/' if next == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push!(Tok::LParen, 1),
            b')' => push!(Tok::RParen, 1),
            b'{' => push!(Tok::LBrace, 1),
            b'}' => push!(Tok::RBrace, 1),
            b'[' => push!(Tok::LBracket, 1),
            b']' => push!(Tok::RBracket, 1),
            b',' => push!(Tok::Comma, 1),
            b';' => push!(Tok::Semi, 1),
            b':' => push!(Tok::Colon, 1),
            b'.' if next == b'.' => push!(Tok::DotDot, 2),
            b'.' => push!(Tok::Dot, 1),
            b'-' if next == b'>' => push!(Tok::Arrow, 2),
            b'-' => push!(Tok::Minus, 1),
            b'+' => push!(Tok::Plus, 1),
            b'*' => push!(Tok::Star, 1),
            b'/' => push!(Tok::Slash, 1),
            b'%' => push!(Tok::Percent, 1),
            b'=' if next == b'=' => push!(Tok::EqEq, 2),
            b'=' => push!(Tok::Assign, 1),
            b'!' if next == b'=' => push!(Tok::NotEq, 2),
            b'!' => push!(Tok::Bang, 1),
            b'<' if next == b'=' => push!(Tok::Le, 2),
            b'<' => push!(Tok::Lt, 1),
            b'>' if next == b'=' => push!(Tok::Ge, 2),
            b'>' => push!(Tok::Gt, 1),
            b'&' if next == b'&' => push!(Tok::AndAnd, 2),
            b'|' if next == b'|' => push!(Tok::OrOr, 2),
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    return Err(LangError::Syntax {
                        line,
                        col,
                        message: "unterminated string literal".into(),
                    });
                }
                let text = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                let len = j + 1 - i;
                push!(Tok::Str(text), len);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &source[start..j];
                let value: i64 = text.parse().map_err(|_| LangError::Syntax {
                    line,
                    col,
                    message: "number too large".into(),
                })?;
                let len = j - i;
                push!(Tok::Int(value), len);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &source[start..j];
                let kind = match word {
                    "cell" => Tok::Cell,
                    "fn" => Tok::Fn,
                    "type" => Tok::Type,
                    "let" => Tok::Let,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "return" => Tok::Return,
                    "box" => Tok::Box_,
                    "wire" => Tok::Wire,
                    "polygon" => Tok::Poly,
                    "port" => Tok::Port,
                    "place" => Tok::Place,
                    "array" => Tok::Array,
                    "at" => Tok::At,
                    "step" => Tok::Step,
                    "count" => Tok::Count,
                    "rot" => Tok::Rot,
                    "mirrorx" => Tok::MirrorX,
                    "mirrory" => Tok::MirrorY,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                let len = j - i;
                push!(kind, len);
            }
            other => {
                return Err(LangError::Syntax {
                    line,
                    col,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            kinds("cell inv place"),
            vec![Tok::Cell, Tok::Ident("inv".into()), Tok::Place, Tok::Eof]
        );
        // `poly` the layer stays an identifier; `polygon` is the shape
        // statement keyword.
        assert_eq!(
            kinds("poly polygon"),
            vec![Tok::Ident("poly".into()), Tok::Poly, Tok::Eof]
        );
    }

    #[test]
    fn operators_and_ranges() {
        assert_eq!(
            kinds("0..4 a.b -> - ="),
            vec![
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(4),
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Minus,
                Tok::Assign,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds(r#""hello" x"#),
            vec![Tok::Str("hello".into()), Tok::Ident("x".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("a // comment\n  b").unwrap();
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn bad_character() {
        assert!(matches!(lex("a # b"), Err(LangError::Syntax { .. })));
    }
}
