use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::LangError;

/// Parses a SIL program.
///
/// # Errors
///
/// Returns [`LangError::Syntax`] with source position on any lexical or
/// grammatical problem.
pub fn parse(source: &str) -> Result<Program, LangError> {
    parse_tokens(lex(source)?)
}

/// Parses an already-lexed token stream (lets the compiler time lexing
/// and parsing as separate pipeline stages).
pub(crate) fn parse_tokens(tokens: Vec<Token>) -> Result<Program, LangError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while *p.peek() != Tok::Eof {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        let t = &self.tokens[self.pos];
        LangError::Syntax {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: Tok) -> Result<(), LangError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---------------------------------------------------------------

    fn item(&mut self) -> Result<Item, LangError> {
        match self.peek() {
            Tok::Cell => {
                let line = self.line();
                self.advance();
                let name = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                Ok(Item::Cell(CellDef {
                    name,
                    params,
                    body,
                    line,
                }))
            }
            Tok::Fn => {
                let line = self.line();
                self.advance();
                let name = self.ident()?;
                let params = self.params()?;
                // Optional result annotation, ignored (documentation).
                if *self.peek() == Tok::Arrow {
                    self.advance();
                    self.ident()?;
                }
                let body = self.block()?;
                Ok(Item::Fn(FnDef {
                    name,
                    params,
                    body,
                    line,
                }))
            }
            Tok::Type => {
                let line = self.line();
                self.advance();
                let name = self.ident()?;
                self.expect(Tok::LBrace)?;
                let mut fields = Vec::new();
                while *self.peek() != Tok::RBrace {
                    fields.push(self.ident()?);
                    // Optional type annotation, ignored.
                    if *self.peek() == Tok::Colon {
                        self.advance();
                        self.ident()?;
                    }
                    if *self.peek() == Tok::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Item::Type(TypeDef { name, fields, line }))
            }
            _ => Ok(Item::Stmt(self.stmt()?)),
        }
    }

    fn params(&mut self) -> Result<Vec<Param>, LangError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Tok::RParen {
            let name = self.ident()?;
            if *self.peek() == Tok::Colon {
                self.advance();
                self.ident()?; // annotation, documentation only
            }
            let default = if *self.peek() == Tok::Assign {
                self.advance();
                Some(self.expr()?)
            } else {
                None
            };
            params.push(Param { name, default });
            if *self.peek() == Tok::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(params)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.advance();
        Ok(body)
    }

    fn orient_mods(&mut self) -> Result<Vec<OrientMod>, LangError> {
        let mut mods = Vec::new();
        loop {
            match self.peek() {
                Tok::Rot => {
                    self.advance();
                    let angle = match self.advance() {
                        Tok::Int(90) => OrientMod::Rot90,
                        Tok::Int(180) => OrientMod::Rot180,
                        Tok::Int(270) => OrientMod::Rot270,
                        _ => return Err(self.err("rot must be 90, 180 or 270")),
                    };
                    mods.push(angle);
                }
                Tok::MirrorX => {
                    self.advance();
                    mods.push(OrientMod::MirrorX);
                }
                Tok::MirrorY => {
                    self.advance();
                    mods.push(OrientMod::MirrorY);
                }
                _ => break,
            }
        }
        Ok(mods)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Box_ => {
                self.advance();
                let layer = self.layer_expr()?;
                let a = self.expr()?;
                let b = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Box { layer, a, b, line })
            }
            Tok::Wire => {
                self.advance();
                let layer = self.layer_expr()?;
                let width = self.expr_no_point()?;
                let mut points = vec![self.expr()?];
                while *self.peek() == Tok::LParen {
                    points.push(self.expr()?);
                }
                self.expect(Tok::Semi)?;
                Ok(Stmt::Wire {
                    layer,
                    width,
                    points,
                    line,
                })
            }
            Tok::Poly => {
                self.advance();
                let layer = self.layer_expr()?;
                let mut points = Vec::new();
                while *self.peek() == Tok::LParen {
                    points.push(self.expr()?);
                }
                self.expect(Tok::Semi)?;
                Ok(Stmt::Polygon {
                    layer,
                    points,
                    line,
                })
            }
            Tok::Port => {
                self.advance();
                let name = match self.peek().clone() {
                    Tok::Ident(n) => {
                        self.advance();
                        Expr::Str(n)
                    }
                    Tok::LParen => self.expr()?,
                    other => {
                        return Err(
                            self.err(format!("expected a port name, found {}", other.describe()))
                        )
                    }
                };
                let layer = self.layer_expr()?;
                let at = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Port {
                    name,
                    layer,
                    at,
                    line,
                })
            }
            Tok::Place => {
                self.advance();
                let cell = self.ident()?;
                let args = self.call_args()?;
                self.expect(Tok::At)?;
                let at = self.expr()?;
                let orient = self.orient_mods()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Place {
                    cell,
                    args,
                    at,
                    orient,
                    line,
                })
            }
            Tok::Array => {
                self.advance();
                let cell = self.ident()?;
                let args = self.call_args()?;
                self.expect(Tok::At)?;
                let at = self.expr()?;
                self.expect(Tok::Step)?;
                let step = self.expr()?;
                let step2 = if *self.peek() == Tok::LParen {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Count)?;
                let count = self.expr_no_point()?;
                let count2 = match self.peek() {
                    Tok::Int(_) | Tok::Ident(_) | Tok::LParen
                        if step2.is_some() && !matches!(self.peek(), Tok::LParen) =>
                    {
                        Some(self.expr_no_point()?)
                    }
                    _ => None,
                };
                let orient = self.orient_mods()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::ArrayPlace {
                    cell,
                    args,
                    at,
                    step,
                    step2,
                    count,
                    count2,
                    orient,
                    line,
                })
            }
            Tok::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let { name, value, line })
            }
            Tok::For => {
                self.advance();
                let var = self.ident()?;
                self.expect(Tok::In)?;
                let from = self.expr_no_record()?;
                self.expect(Tok::DotDot)?;
                let to = self.expr_no_record()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    line,
                })
            }
            Tok::If => {
                self.advance();
                let cond = self.expr_no_record()?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == Tok::Else {
                    self.advance();
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            Tok::Return => {
                self.advance();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Ident(name) if *self.peek2() == Tok::Assign => {
                self.advance();
                self.advance();
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign { name, value, line })
            }
            _ => {
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr { value, line })
            }
        }
    }

    /// A layer position: an identifier (the usual case) or a
    /// parenthesized expression computing a layer name string.
    fn layer_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(Expr::Str(name))
            }
            Tok::LParen => self.expr(),
            other => Err(self.err(format!("expected a layer name, found {}", other.describe()))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        while *self.peek() != Tok::RParen {
            args.push(self.expr()?);
            if *self.peek() == Tok::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    // Expression parsing (precedence climbing). `allow_record` guards the
    // `ident { ... }` record literal, which would swallow statement
    // blocks after `if`/`for`; `allow_point` guards treating `(a, b)` as
    // a point (always on — the flag exists for widths/counts that are
    // followed by a point literal).

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary_expr(0, true)
    }

    fn expr_no_record(&mut self) -> Result<Expr, LangError> {
        self.binary_expr(0, false)
    }

    /// An expression that must not be a bare point literal — used where a
    /// scalar is followed by a point (`wire metal 2 (0,0)...`). A
    /// parenthesized scalar is still fine.
    fn expr_no_point(&mut self) -> Result<Expr, LangError> {
        // Same grammar; points only arise from the `(a, b)` primary and
        // widths are scalars, so the normal parser does the right thing:
        // `2 (0,0)` parses 2 then stops at `(`.
        self.binary_expr(0, true)
    }

    fn binary_expr(&mut self, min_prec: u8, allow_record: bool) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr(allow_record)?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::Or, 1),
                Tok::AndAnd => (BinOp::And, 2),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::NotEq => (BinOp::Ne, 3),
                Tok::Lt => (BinOp::Lt, 4),
                Tok::Le => (BinOp::Le, 4),
                Tok::Gt => (BinOp::Gt, 4),
                Tok::Ge => (BinOp::Ge, 4),
                Tok::Plus => (BinOp::Add, 5),
                Tok::Minus => (BinOp::Sub, 5),
                Tok::Star => (BinOp::Mul, 6),
                Tok::Slash => (BinOp::Div, 6),
                Tok::Percent => (BinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary_expr(prec + 1, allow_record)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self, allow_record: bool) -> Result<Expr, LangError> {
        match self.peek() {
            Tok::Minus => {
                self.advance();
                let e = self.unary_expr(allow_record)?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            Tok::Bang => {
                self.advance();
                let e = self.unary_expr(allow_record)?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                })
            }
            _ => self.postfix_expr(allow_record),
        }
    }

    fn postfix_expr(&mut self, allow_record: bool) -> Result<Expr, LangError> {
        let mut e = self.primary_expr(allow_record)?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.advance();
                    let field = self.ident()?;
                    e = Expr::Field {
                        base: Box::new(e),
                        field,
                    };
                }
                Tok::LBracket => {
                    self.advance();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self, allow_record: bool) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            Tok::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Tok::LBracket => {
                self.advance();
                let mut items = Vec::new();
                while *self.peek() != Tok::RBracket {
                    items.push(self.expr()?);
                    if *self.peek() == Tok::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Expr::List(items))
            }
            Tok::LParen => {
                self.advance();
                let first = self.expr()?;
                if *self.peek() == Tok::Comma {
                    self.advance();
                    let second = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Point(Box::new(first), Box::new(second)))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::Ident(name) => {
                self.advance();
                if *self.peek() == Tok::LParen {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args })
                } else if allow_record && *self.peek() == Tok::LBrace {
                    self.advance();
                    let mut fields = Vec::new();
                    while *self.peek() != Tok::RBrace {
                        let fname = self.ident()?;
                        self.expect(Tok::Colon)?;
                        let value = self.expr()?;
                        fields.push((fname, value));
                        if *self.peek() == Tok::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                    Ok(Expr::Record {
                        type_name: name,
                        fields,
                    })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cell_with_geometry() {
        let p = parse(
            "cell inv(w = 2) {
                box diff (0, 0) (w, 8);
                wire metal 3 (0, 0) (10, 0);
                polygon poly (0,0) (4,0) (0,4);
                port out metal (1, 8);
            }",
        )
        .unwrap();
        assert_eq!(p.items.len(), 1);
        match &p.items[0] {
            Item::Cell(c) => {
                assert_eq!(c.name, "inv");
                assert_eq!(c.params.len(), 1);
                assert!(c.params[0].default.is_some());
                assert_eq!(c.body.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_place_and_array() {
        let p = parse(
            "place inv(4) at (10, 0) rot 90 mirrorx;
             array bit() at (0,0) step (6, 0) count 8;
             array bit() at (0,0) step (6,0) (0, 10) count 4 2;",
        )
        .unwrap();
        assert_eq!(p.items.len(), 3);
        match &p.items[0] {
            Item::Stmt(Stmt::Place { cell, orient, .. }) => {
                assert_eq!(cell, "inv");
                assert_eq!(orient, &[OrientMod::Rot90, OrientMod::MirrorX]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.items[2] {
            Item::Stmt(Stmt::ArrayPlace { step2, count2, .. }) => {
                assert!(step2.is_some());
                assert!(count2.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "cell c() {
                for i in 0..4 {
                    if i % 2 == 0 { box metal (i, 0) (i + 1, 3); } else { }
                }
            }",
        )
        .unwrap();
        match &p.items[0] {
            Item::Cell(c) => assert!(matches!(c.body[0], Stmt::For { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_types_and_records() {
        let p = parse(
            "type pitch { x: int, y: int }
             let q = pitch { x: 7, y: 9 };
             let v = q.x + q.y;",
        )
        .unwrap();
        assert_eq!(p.items.len(), 3);
        match &p.items[1] {
            Item::Stmt(Stmt::Let { value, .. }) => {
                assert!(matches!(value, Expr::Record { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_literal_not_confused_with_if_block() {
        // `if n { ... }` must treat `{` as the block, not a record.
        let p = parse("cell c(n) { if n > 0 { box metal (0,0) (1,1); } }").unwrap();
        match &p.items[0] {
            Item::Cell(c) => assert!(matches!(c.body[0], Stmt::If { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_functions() {
        let p = parse("fn double(n) -> int { return n * 2; }").unwrap();
        match &p.items[0] {
            Item::Fn(f) => {
                assert_eq!(f.name, "double");
                assert!(matches!(f.body[0], Stmt::Return { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn point_vs_paren() {
        let p = parse("let a = (1 + 2) * 3; let b = (1, 2);").unwrap();
        match &p.items[0] {
            Item::Stmt(Stmt::Let { value, .. }) => {
                assert!(matches!(value, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.items[1] {
            Item::Stmt(Stmt::Let { value, .. }) => {
                assert!(matches!(value, Expr::Point(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lists_and_indexing() {
        let p = parse("let l = [1, 2, 3]; let x = l[1];").unwrap();
        match &p.items[1] {
            Item::Stmt(Stmt::Let { value, .. }) => {
                assert!(matches!(value, Expr::Index { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assignment_vs_expression_statement() {
        let p = parse("cell c() { let x = 1; x = x + 1; noop(); }").unwrap();
        match &p.items[0] {
            Item::Cell(c) => {
                assert!(matches!(c.body[1], Stmt::Assign { .. }));
                assert!(matches!(c.body[2], Stmt::Expr { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_located() {
        let err = parse("cell c() {\n box metal (0,0) (1,1)\n}").unwrap_err();
        match err {
            LangError::Syntax { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_rotation_rejected() {
        assert!(parse("place c() at (0,0) rot 45;").is_err());
    }
}
