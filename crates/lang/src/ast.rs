/// A SIL program: a list of top-level items.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub items: Vec<Item>,
}

/// A top-level item.
///
/// `Stmt` is by far the largest variant, but items live in one short
/// `Vec` per program, so boxing would buy nothing.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Item {
    /// `cell name(params) { body }` — a parameterised layout generator.
    Cell(CellDef),
    /// `fn name(params) { body }` — a value-returning procedure.
    Fn(FnDef),
    /// `type name { field, ... }` — a record type (data-type extension).
    Type(TypeDef),
    /// A statement executed in the implicit top cell.
    Stmt(Stmt),
}

/// A parameter: name plus optional default.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub default: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CellDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    pub name: String,
    pub fields: Vec<String>,
    pub line: usize,
}

/// Orientation modifiers on a placement, applied in source order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrientMod {
    Rot90,
    Rot180,
    Rot270,
    MirrorX,
    MirrorY,
}

/// A statement. Every statement carries its source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `box layer (x0,y0) (x1,y1);`
    Box {
        layer: Expr,
        a: Expr,
        b: Expr,
        line: usize,
    },
    /// `wire layer width (x,y) (x,y) ...;`
    Wire {
        layer: Expr,
        width: Expr,
        points: Vec<Expr>,
        line: usize,
    },
    /// `polygon layer (x,y) (x,y) (x,y) ...;`
    Polygon {
        layer: Expr,
        points: Vec<Expr>,
        line: usize,
    },
    /// `port name layer (x,y);` — `name` may be a parenthesized string
    /// expression for computed names: `port ("b" + str(i)) metal (x,y);`
    Port {
        name: Expr,
        layer: Expr,
        at: Expr,
        line: usize,
    },
    /// `place cell(args) at (x,y) [orientation...];`
    Place {
        cell: String,
        args: Vec<Expr>,
        at: Expr,
        orient: Vec<OrientMod>,
        line: usize,
    },
    /// `array cell(args) at (x,y) step (dx,dy) [(dx2,dy2)] count n [m]
    /// [orientation...];`
    ArrayPlace {
        cell: String,
        args: Vec<Expr>,
        at: Expr,
        step: Expr,
        step2: Option<Expr>,
        count: Expr,
        count2: Option<Expr>,
        orient: Vec<OrientMod>,
        line: usize,
    },
    /// `let name = expr;`
    Let {
        name: String,
        value: Expr,
        line: usize,
    },
    /// `name = expr;`
    Assign {
        name: String,
        value: Expr,
        line: usize,
    },
    /// `for i in a .. b { body }`
    For {
        var: String,
        from: Expr,
        to: Expr,
        body: Vec<Stmt>,
        line: usize,
    },
    /// `if cond { ... } else { ... }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: usize,
    },
    /// `return expr;` (functions only).
    Return { value: Option<Expr>, line: usize },
    /// A bare expression (evaluated for effect, e.g. a function call).
    Expr { value: Expr, line: usize },
}

impl Stmt {
    /// The statement's source line.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Box { line, .. }
            | Stmt::Wire { line, .. }
            | Stmt::Polygon { line, .. }
            | Stmt::Port { line, .. }
            | Stmt::Place { line, .. }
            | Stmt::ArrayPlace { line, .. }
            | Stmt::Let { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::For { line, .. }
            | Stmt::If { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Expr { line, .. } => *line,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Bool(bool),
    Str(String),
    /// `(x, y)` — a point literal.
    Point(Box<Expr>, Box<Expr>),
    /// `[a, b, c]` — a list literal.
    List(Vec<Expr>),
    Ident(String),
    /// `name { field: value, ... }` — record construction.
    Record {
        type_name: String,
        fields: Vec<(String, Expr)>,
    },
    /// `f(args)` — function call.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `expr.field` — record field access (also `.x`/`.y` on points).
    Field {
        base: Box<Expr>,
        field: String,
    },
    /// `expr[index]` — list indexing.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}
