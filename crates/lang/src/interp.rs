use crate::ast::*;
use crate::lexer::lex;
use crate::parser::{parse, parse_tokens};
use crate::value::Value;
use crate::LangError;
use silc_geom::{Fingerprint, FpHasher, Orientation, Path, Point, Polygon, Rect, Transform};
use silc_layout::{Cell, CellId, Element, Instance, Layer, Library, Port};
use silc_trace::{span, Tracer};
use std::collections::HashMap;

/// The result of compiling a SIL program: a layout library plus the id of
/// the implicit top cell (named `main`) holding the program's top-level
/// geometry and placements.
#[derive(Debug)]
pub struct Design {
    /// The elaborated hierarchy.
    pub library: Library,
    /// The implicit top cell.
    pub top: CellId,
}

impl Fingerprint for Design {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.library.fp_hash(h);
        self.top.fp_hash(h);
    }
}

/// The SIL compiler: parses a program and elaborates it into a layout
/// hierarchy.
///
/// Parameterised cells are elaborated lazily and **memoized per argument
/// tuple**: placing `shifter(8)` twice emits one library cell instanced
/// twice, preserving the sharing a graphics language's symbol facility
/// provides.
///
/// # Example
///
/// ```
/// use silc_lang::Compiler;
/// # fn main() -> Result<(), silc_lang::LangError> {
/// let design = Compiler::new().compile(
///     "cell pad() { box metal (0,0) (8,8); }
///      place pad() at (0, 0);
///      place pad() at (20, 0);")?;
/// assert!(design.library.cell_by_name("pad").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    tracer: Tracer,
}

/// The standard-cell prelude: Mead–Conway leaf cells available to every
/// SIL program (placed like any user cell, elaborated only when used).
/// All are DRC-clean under `RuleSet::mead_conway_nmos`.
///
/// | cell | purpose | ports |
/// |---|---|---|
/// | `std_contact_md()` | metal–diffusion contact | `c` |
/// | `std_contact_mp()` | metal–poly contact | `c` |
/// | `std_butting()` | butting contact (poly+diff under one cut) | `c` |
/// | `std_pullup()` | depletion pullup load | `out` |
/// | `std_pass()` | pass transistor | `g`, `a`, `b` |
/// | `std_inv()` | depletion-load inverter | `inp`, `out`, `vdd`, `gnd` |
pub const PRELUDE: &str = r#"
cell std_contact_md() {
    box diff (-2, -2) (2, 2);
    box metal (-2, -2) (2, 2);
    box contact (-1, -1) (1, 1);
    port c metal (0, 0);
}
cell std_contact_mp() {
    box poly (-2, -2) (2, 2);
    box metal (-2, -2) (2, 2);
    box contact (-1, -1) (1, 1);
    port c metal (0, 0);
}
cell std_butting() {
    box poly (-2, -3) (2, 0);
    box diff (-2, 0) (2, 3);
    box metal (-2, -3) (2, 3);
    box contact (-1, -2) (1, 2);
    port c metal (0, 0);
}
cell std_pullup() {
    box implant (-4, -4) (8, 4);
    box diff (-3, -2) (6, 2);
    box poly (-1, -4) (1, 4);
    box contact (3, -1) (5, 1);
    box metal (2, -2) (6, 2);
    port out metal (4, 0);
}
cell std_pass() {
    box diff (-4, -1) (4, 1);
    box poly (-1, -4) (1, 4);
    port g poly (0, 4);
    port a diff (-4, 0);
    port b diff (4, 0);
}
cell std_inv() {
    box diff (0, 0) (4, 30);
    box poly (-4, 8) (8, 10);
    box poly (-4, 20) (8, 22);
    box implant (-2, 18) (6, 24);
    box contact (1, 14) (3, 16);
    box metal (0, 13) (12, 17);
    box buried (-4, 14) (0, 21);
    port inp poly (-4, 9);
    port out metal (12, 15);
    port gnd diff (2, 0);
    port vdd diff (2, 30);
}
"#;

impl Compiler {
    /// Creates a compiler.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Attaches a [`Tracer`]: lexing, parsing and elaboration record
    /// `lang.*` spans and counters on it. The default (disabled) tracer
    /// costs nothing.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Compiler {
        self.tracer = tracer;
        self
    }

    /// Compiles SIL source into a layout design.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] for syntax errors (with position) and for
    /// elaboration errors (with the offending statement's line).
    pub fn compile(&self, source: &str) -> Result<Design, LangError> {
        let tokens = {
            let mut s = span!(self.tracer, "lang.lex");
            let tokens = lex(source)?;
            s.attr("tokens", tokens.len() as u64);
            tokens
        };
        let program = {
            let mut s = span!(self.tracer, "lang.parse");
            let program = parse_tokens(tokens)?;
            s.attr("items", program.items.len() as u64);
            program
        };
        let elab_span = span!(self.tracer, "lang.elaborate");
        let mut interp = Interp::new();

        // The standard-cell prelude is always in scope.
        let prelude = parse(PRELUDE).expect("the prelude is valid SIL");
        for item in &prelude.items {
            if let Item::Cell(c) = item {
                interp.cells.insert(c.name.clone(), c.clone());
            }
        }

        // Register definitions first so order of items is free.
        let mut top_stmts: Vec<&Stmt> = Vec::new();
        for item in &program.items {
            match item {
                Item::Cell(c) => {
                    if interp.cells.insert(c.name.clone(), c.clone()).is_some() {
                        return Err(LangError::eval(
                            c.line,
                            format!("cell `{}` is defined twice", c.name),
                        ));
                    }
                }
                Item::Fn(f) => {
                    if interp.fns.insert(f.name.clone(), f.clone()).is_some() {
                        return Err(LangError::eval(
                            f.line,
                            format!("fn `{}` is defined twice", f.name),
                        ));
                    }
                }
                Item::Type(t) => {
                    if interp.types.insert(t.name.clone(), t.clone()).is_some() {
                        return Err(LangError::eval(
                            t.line,
                            format!("type `{}` is defined twice", t.name),
                        ));
                    }
                }
                Item::Stmt(s) => top_stmts.push(s),
            }
        }

        let mut env = Env::new();
        let mut top = Cell::new("main");
        for stmt in top_stmts {
            let flow = interp.exec_stmt(stmt, &mut env, &mut Some(&mut top))?;
            if let Flow::Return(_) = flow {
                return Err(LangError::eval(stmt.line(), "return outside a function"));
            }
        }
        let top_id = interp
            .lib
            .add_cell(top)
            .map_err(|e| LangError::eval(0, e.to_string()))?;
        drop(elab_span);
        self.tracer.add("lang.cells", interp.lib.len() as u64);
        self.tracer
            .add("lang.cells_elaborated", interp.cells_elaborated);
        self.tracer.add("lang.memo_hits", interp.memo_hits);
        Ok(Design {
            library: interp.lib,
            top: top_id,
        })
    }
}

// -------------------------------------------------------------------
// Environment
// -------------------------------------------------------------------

struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    fn new() -> Env {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn define(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), value);
    }

    fn assign(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

enum Flow {
    Normal,
    Return(Value),
}

// -------------------------------------------------------------------
// Interpreter
// -------------------------------------------------------------------

struct Interp {
    cells: HashMap<String, CellDef>,
    fns: HashMap<String, FnDef>,
    types: HashMap<String, TypeDef>,
    lib: Library,
    memo: HashMap<String, CellId>,
    elab_stack: Vec<String>,
    call_depth: usize,
    cells_elaborated: u64,
    memo_hits: u64,
}

type CellSlot<'a, 'b> = Option<&'a mut Cell>;

impl Interp {
    fn new() -> Interp {
        Interp {
            cells: HashMap::new(),
            fns: HashMap::new(),
            types: HashMap::new(),
            lib: Library::new(),
            memo: HashMap::new(),
            elab_stack: Vec::new(),
            call_depth: 0,
            cells_elaborated: 0,
            memo_hits: 0,
        }
    }

    // ---------------------------------------------------------------
    // Cell elaboration
    // ---------------------------------------------------------------

    fn elaborate_cell(
        &mut self,
        name: &str,
        args: Vec<Value>,
        line: usize,
    ) -> Result<CellId, LangError> {
        let def = self
            .cells
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::eval(line, format!("cell `{name}` is not defined")))?;

        // Bind parameters (defaults for missing trailing arguments).
        if args.len() > def.params.len() {
            return Err(LangError::eval(
                line,
                format!(
                    "cell `{name}` takes {} parameter(s), got {}",
                    def.params.len(),
                    args.len()
                ),
            ));
        }
        let mut bound: Vec<(String, Value)> = Vec::new();
        for (i, param) in def.params.iter().enumerate() {
            let value = if i < args.len() {
                args[i].clone()
            } else if let Some(default) = &param.default {
                let mut env = Env::new();
                self.eval(default, &mut env, line)?
            } else {
                return Err(LangError::eval(
                    line,
                    format!("cell `{name}` missing argument `{}`", param.name),
                ));
            };
            bound.push((param.name.clone(), value));
        }

        // Memoization key from the bound argument tuple.
        let key = format!(
            "{name}({})",
            bound
                .iter()
                .map(|(_, v)| v.memo_key())
                .collect::<Vec<_>>()
                .join(",")
        );
        if let Some(&id) = self.memo.get(&key) {
            self.memo_hits += 1;
            return Ok(id);
        }
        if self.elab_stack.contains(&key) {
            return Err(LangError::RecursiveCell {
                name: name.to_string(),
            });
        }
        self.elab_stack.push(key.clone());

        // Unique library name per variant.
        let lib_name = if bound.is_empty() {
            name.to_string()
        } else {
            let suffix: String = bound
                .iter()
                .map(|(_, v)| sanitize(&v.memo_key()))
                .collect::<Vec<_>>()
                .join("_");
            format!("{name}${suffix}")
        };

        let mut env = Env::new();
        for (pname, value) in &bound {
            env.define(pname, value.clone());
        }
        let mut cell = Cell::new(lib_name);
        for stmt in &def.body {
            let flow = self.exec_stmt(stmt, &mut env, &mut Some(&mut cell))?;
            if let Flow::Return(_) = flow {
                return Err(LangError::eval(
                    stmt.line(),
                    "return is not allowed in a cell body",
                ));
            }
        }
        self.elab_stack.pop();

        let id = self
            .lib
            .add_cell(cell)
            .map_err(|e| LangError::eval(def.line, e.to_string()))?;
        self.memo.insert(key, id);
        self.cells_elaborated += 1;
        Ok(id)
    }

    // ---------------------------------------------------------------
    // Statements
    // ---------------------------------------------------------------

    fn exec_block(
        &mut self,
        body: &[Stmt],
        env: &mut Env,
        cell: &mut CellSlot<'_, '_>,
    ) -> Result<Flow, LangError> {
        env.push();
        for stmt in body {
            match self.exec_stmt(stmt, env, cell)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => {
                    env.pop();
                    return Ok(ret);
                }
            }
        }
        env.pop();
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        cell: &mut CellSlot<'_, '_>,
    ) -> Result<Flow, LangError> {
        let line = stmt.line();
        match stmt {
            Stmt::Box { layer, a, b, .. } => {
                let layer = self.eval_layer(layer, env, line)?;
                let pa = self.eval_point(a, env, line)?;
                let pb = self.eval_point(b, env, line)?;
                let rect = Rect::new(pa, pb).map_err(|e| LangError::eval(line, e.to_string()))?;
                self.target(cell, line)?
                    .push_element(Element::rect(layer, rect));
                Ok(Flow::Normal)
            }
            Stmt::Wire {
                layer,
                width,
                points,
                ..
            } => {
                let layer = self.eval_layer(layer, env, line)?;
                let w = self.eval_int(width, env, line)?;
                let pts = points
                    .iter()
                    .map(|p| self.eval_point(p, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let path = Path::new(w, pts).map_err(|e| LangError::eval(line, e.to_string()))?;
                self.target(cell, line)?
                    .push_element(Element::new(layer, path));
                Ok(Flow::Normal)
            }
            Stmt::Polygon { layer, points, .. } => {
                let layer = self.eval_layer(layer, env, line)?;
                let pts = points
                    .iter()
                    .map(|p| self.eval_point(p, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let poly = Polygon::new(pts).map_err(|e| LangError::eval(line, e.to_string()))?;
                self.target(cell, line)?
                    .push_element(Element::new(layer, poly));
                Ok(Flow::Normal)
            }
            Stmt::Port {
                name, layer, at, ..
            } => {
                let name_value = self.eval(name, env, line)?;
                let Value::Str(port_name) = name_value else {
                    return Err(LangError::eval(
                        line,
                        format!("port name must be a string, got {}", name_value.type_name()),
                    ));
                };
                let layer = self.eval_layer(layer, env, line)?;
                let p = self.eval_point(at, env, line)?;
                self.target(cell, line)?
                    .push_port(Port::new(port_name, layer, p));
                Ok(Flow::Normal)
            }
            Stmt::Place {
                cell: child,
                args,
                at,
                orient,
                ..
            } => {
                let arg_values = args
                    .iter()
                    .map(|a| self.eval(a, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let at = self.eval_point(at, env, line)?;
                let child_id = self.elaborate_cell(child, arg_values, line)?;
                let transform = Transform::new(orientation_of(orient), at);
                self.target(cell, line)?
                    .push_instance(Instance::place(child_id, transform));
                Ok(Flow::Normal)
            }
            Stmt::ArrayPlace {
                cell: child,
                args,
                at,
                step,
                step2,
                count,
                count2,
                orient,
                ..
            } => {
                let arg_values = args
                    .iter()
                    .map(|a| self.eval(a, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let at = self.eval_point(at, env, line)?;
                let step = self.eval_point(step, env, line)?;
                let step2 = step2
                    .as_ref()
                    .map(|s| self.eval_point(s, env, line))
                    .transpose()?;
                let count = self.eval_int(count, env, line)?;
                let count2 = count2
                    .as_ref()
                    .map(|c| self.eval_int(c, env, line))
                    .transpose()?
                    .unwrap_or(1);
                if count < 1 || count2 < 1 {
                    return Err(LangError::eval(line, "array count must be at least 1"));
                }
                let child_id = self.elaborate_cell(child, arg_values, line)?;
                let orientation = orientation_of(orient);
                let target = self.target(cell, line)?;
                // Axis-aligned steps map onto native array instances
                // (compact in CIF); diagonal steps expand to placements.
                let axis_ok = step.y == 0 && step2.is_none_or(|s| s.x == 0);
                if axis_ok {
                    let dy = step2.map_or(0, |s| s.y);
                    let inst = Instance::array(
                        child_id,
                        Transform::new(orientation, at),
                        count as u32,
                        count2 as u32,
                        step.x,
                        dy,
                    )
                    .map_err(|e| LangError::eval(line, e.to_string()))?;
                    target.push_instance(inst);
                } else {
                    for j in 0..count2 {
                        for i in 0..count {
                            let offset = Point::new(
                                at.x + step.x * i + step2.map_or(0, |s| s.x) * j,
                                at.y + step.y * i + step2.map_or(0, |s| s.y) * j,
                            );
                            target.push_instance(Instance::place(
                                child_id,
                                Transform::new(orientation, offset),
                            ));
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Let { name, value, .. } => {
                let v = self.eval(value, env, line)?;
                env.define(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.eval(value, env, line)?;
                if !env.assign(name, v) {
                    return Err(LangError::eval(
                        line,
                        format!("assignment to undefined variable `{name}`"),
                    ));
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let from = self.eval_int(from, env, line)?;
                let to = self.eval_int(to, env, line)?;
                for i in from..to {
                    env.push();
                    env.define(var, Value::Int(i));
                    let flow = self.exec_block(body, env, cell)?;
                    env.pop();
                    if let Flow::Return(_) = flow {
                        return Ok(flow);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.eval(cond, env, line)?;
                let c = c.as_bool().ok_or_else(|| {
                    LangError::eval(
                        line,
                        format!("if condition must be bool, got {}", c.type_name()),
                    )
                })?;
                if c {
                    self.exec_block(then_body, env, cell)
                } else {
                    self.exec_block(else_body, env, cell)
                }
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(e, env, line)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr { value, .. } => {
                self.eval(value, env, line)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn target<'a>(
        &self,
        cell: &'a mut CellSlot<'_, '_>,
        line: usize,
    ) -> Result<&'a mut Cell, LangError> {
        cell.as_deref_mut().ok_or_else(|| {
            LangError::eval(line, "geometry statements are not allowed inside fn bodies")
        })
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    fn eval(&mut self, e: &Expr, env: &mut Env, line: usize) -> Result<Value, LangError> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Point(x, y) => {
                let px = self.eval_int(x, env, line)?;
                let py = self.eval_int(y, env, line)?;
                Ok(Value::Point(Point::new(px, py)))
            }
            Expr::List(items) => {
                let vs = items
                    .iter()
                    .map(|i| self.eval(i, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::List(vs))
            }
            Expr::Ident(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| LangError::eval(line, format!("`{name}` is not defined"))),
            Expr::Record { type_name, fields } => {
                let def = self.types.get(type_name).cloned().ok_or_else(|| {
                    LangError::eval(line, format!("type `{type_name}` is not defined"))
                })?;
                let mut out: Vec<(String, Value)> = Vec::new();
                for fname in &def.fields {
                    let fexpr = fields
                        .iter()
                        .find(|(n, _)| n == fname)
                        .map(|(_, e)| e)
                        .ok_or_else(|| {
                            LangError::eval(
                                line,
                                format!("missing field `{fname}` of type `{type_name}`"),
                            )
                        })?;
                    out.push((fname.clone(), self.eval(fexpr, env, line)?));
                }
                for (n, _) in fields {
                    if !def.fields.contains(n) {
                        return Err(LangError::eval(
                            line,
                            format!("type `{type_name}` has no field `{n}`"),
                        ));
                    }
                }
                Ok(Value::Record {
                    type_name: type_name.clone(),
                    fields: out,
                })
            }
            Expr::Call { name, args } => {
                let arg_values = args
                    .iter()
                    .map(|a| self.eval(a, env, line))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call(name, arg_values, line)
            }
            Expr::Field { base, field } => {
                let base = self.eval(base, env, line)?;
                match (&base, field.as_str()) {
                    (Value::Point(p), "x") => Ok(Value::Int(p.x)),
                    (Value::Point(p), "y") => Ok(Value::Int(p.y)),
                    (Value::Record { fields, .. }, _) => fields
                        .iter()
                        .find(|(n, _)| n == field)
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| {
                            LangError::eval(
                                line,
                                format!("{} has no field `{field}`", base.type_name()),
                            )
                        }),
                    _ => Err(LangError::eval(
                        line,
                        format!("{} has no field `{field}`", base.type_name()),
                    )),
                }
            }
            Expr::Index { base, index } => {
                let b = self.eval(base, env, line)?;
                let i = self.eval_int(index, env, line)?;
                match b {
                    Value::List(items) => items
                        .get(usize::try_from(i).unwrap_or(usize::MAX))
                        .cloned()
                        .ok_or_else(|| {
                            LangError::eval(
                                line,
                                format!("index {i} out of range (len {})", items.len()),
                            )
                        }),
                    other => Err(LangError::eval(
                        line,
                        format!("cannot index a {}", other.type_name()),
                    )),
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, env, line)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Point(p)) => Ok(Value::Point(Point::new(-p.x, -p.y))),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(LangError::eval(
                        line,
                        format!("cannot apply {op:?} to {}", v.type_name()),
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logicals.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = self.eval(lhs, env, line)?;
                    let l = l.as_bool().ok_or_else(|| {
                        LangError::eval(
                            line,
                            format!("logical op needs bool, got {}", l.type_name()),
                        )
                    })?;
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let r = self.eval(rhs, env, line)?;
                            r.as_bool().map(Value::Bool).ok_or_else(|| {
                                LangError::eval(
                                    line,
                                    format!("logical op needs bool, got {}", r.type_name()),
                                )
                            })
                        }
                    };
                }
                let l = self.eval(lhs, env, line)?;
                let r = self.eval(rhs, env, line)?;
                binary(op, l, r, line)
            }
        }
    }

    fn call(&mut self, name: &str, args: Vec<Value>, line: usize) -> Result<Value, LangError> {
        if let Some(def) = self.fns.get(name).cloned() {
            if self.call_depth >= 256 {
                return Err(LangError::eval(line, "function recursion too deep"));
            }
            if args.len() != def.params.len() {
                // Allow defaults on trailing params.
                if args.len() > def.params.len() {
                    return Err(LangError::eval(
                        line,
                        format!(
                            "fn `{name}` takes {} argument(s), got {}",
                            def.params.len(),
                            args.len()
                        ),
                    ));
                }
            }
            let mut env = Env::new();
            for (i, param) in def.params.iter().enumerate() {
                let v = if i < args.len() {
                    args[i].clone()
                } else if let Some(default) = &param.default {
                    self.eval(default, &mut Env::new(), line)?
                } else {
                    return Err(LangError::eval(
                        line,
                        format!("fn `{name}` missing argument `{}`", param.name),
                    ));
                };
                env.define(&param.name, v);
            }
            self.call_depth += 1;
            let flow = self.exec_block(&def.body, &mut env, &mut None);
            self.call_depth -= 1;
            match flow? {
                Flow::Return(v) => Ok(v),
                Flow::Normal => Ok(Value::Int(0)),
            }
        } else {
            builtin(name, &args, line)
        }
    }

    // Typed evaluation helpers.

    fn eval_int(&mut self, e: &Expr, env: &mut Env, line: usize) -> Result<i64, LangError> {
        let v = self.eval(e, env, line)?;
        v.as_int()
            .ok_or_else(|| LangError::eval(line, format!("expected an int, got {}", v.type_name())))
    }

    fn eval_point(&mut self, e: &Expr, env: &mut Env, line: usize) -> Result<Point, LangError> {
        let v = self.eval(e, env, line)?;
        v.as_point().ok_or_else(|| {
            LangError::eval(line, format!("expected a point, got {}", v.type_name()))
        })
    }

    fn eval_layer(&mut self, e: &Expr, env: &mut Env, line: usize) -> Result<Layer, LangError> {
        let v = self.eval(e, env, line)?;
        match &v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| LangError::eval(line, format!("unknown layer `{s}`"))),
            other => Err(LangError::eval(
                line,
                format!("expected a layer name, got {}", other.type_name()),
            )),
        }
    }
}

fn binary(op: &BinOp, l: Value, r: Value, line: usize) -> Result<Value, LangError> {
    use BinOp::*;
    let type_err = |l: &Value, r: &Value| {
        LangError::eval(
            line,
            format!(
                "cannot apply {op:?} to {} and {}",
                l.type_name(),
                r.type_name()
            ),
        )
    };
    // Arithmetic must fail loudly: unchecked ops panic on overflow in
    // debug builds and silently wrap in release, producing corrupt
    // geometry. `checked_*` turns both into an `Eval` diagnostic.
    let overflow = |what: &str| LangError::eval(line, format!("integer overflow in {what}"));
    let add = |a: i64, b: i64| a.checked_add(b).ok_or_else(|| overflow("addition"));
    let sub = |a: i64, b: i64| a.checked_sub(b).ok_or_else(|| overflow("subtraction"));
    let mul = |a: i64, b: i64| a.checked_mul(b).ok_or_else(|| overflow("multiplication"));
    match (op, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(add(*a, *b)?)),
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(sub(*a, *b)?)),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(mul(*a, *b)?)),
        (Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(LangError::eval(line, "division by zero"))
            } else {
                Ok(Value::Int(a / b))
            }
        }
        (Rem, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(LangError::eval(line, "division by zero"))
            } else {
                Ok(Value::Int(a % b))
            }
        }
        (Add, Value::Point(a), Value::Point(b)) => {
            Ok(Value::Point(Point::new(add(a.x, b.x)?, add(a.y, b.y)?)))
        }
        (Sub, Value::Point(a), Value::Point(b)) => {
            Ok(Value::Point(Point::new(sub(a.x, b.x)?, sub(a.y, b.y)?)))
        }
        (Mul, Value::Point(a), Value::Int(k)) | (Mul, Value::Int(k), Value::Point(a)) => {
            Ok(Value::Point(Point::new(mul(a.x, *k)?, mul(a.y, *k)?)))
        }
        (Add, Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
        (Eq, a, b) => Ok(Value::Bool(a == b)),
        (Ne, a, b) => Ok(Value::Bool(a != b)),
        (Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a < b)),
        (Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a <= b)),
        (Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a > b)),
        (Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a >= b)),
        _ => Err(type_err(&l, &r)),
    }
}

fn builtin(name: &str, args: &[Value], line: usize) -> Result<Value, LangError> {
    let int_arg = |i: usize| -> Result<i64, LangError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| LangError::eval(line, format!("`{name}` expects int argument {i}")))
    };
    match (name, args.len()) {
        ("abs", 1) => Ok(Value::Int(int_arg(0)?.abs())),
        ("min", 2) => Ok(Value::Int(int_arg(0)?.min(int_arg(1)?))),
        ("max", 2) => Ok(Value::Int(int_arg(0)?.max(int_arg(1)?))),
        ("len", 1) => match &args[0] {
            Value::List(items) => Ok(Value::Int(items.len() as i64)),
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            other => Err(LangError::eval(
                line,
                format!("`len` expects a list or string, got {}", other.type_name()),
            )),
        },
        ("pt", 2) => Ok(Value::Point(Point::new(int_arg(0)?, int_arg(1)?))),
        ("str", 1) => Ok(Value::Str(args[0].to_string())),
        _ => Err(LangError::eval(
            line,
            format!("`{name}` is not a function (or wrong argument count)"),
        )),
    }
}

fn orientation_of(mods: &[OrientMod]) -> Orientation {
    let mut total = Orientation::R0;
    for m in mods {
        let step = match m {
            OrientMod::Rot90 => Orientation::R90,
            OrientMod::Rot180 => Orientation::R180,
            OrientMod::Rot270 => Orientation::R270,
            OrientMod::MirrorX => Orientation::MX,
            OrientMod::MirrorY => Orientation::MX180,
        };
        total = step.compose(total);
    }
    total
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_layout::flatten;

    fn compile(src: &str) -> Design {
        Compiler::new().compile(src).unwrap()
    }

    fn compile_err(src: &str) -> LangError {
        Compiler::new().compile(src).unwrap_err()
    }

    #[test]
    fn int_overflow_is_an_eval_error_not_a_wrap() {
        // i64::MAX + 1, i64::MIN - 1, and a huge product: each must fail
        // with a diagnostic naming the line, not panic or wrap.
        for (src, what) in [
            ("let a = 9223372036854775807;\nlet b = a + 1;", "addition"),
            (
                "let a = 0 - 9223372036854775807;\nlet b = a - 2;",
                "subtraction",
            ),
            (
                "let a = 4611686018427387904;\nlet b = a * 4;",
                "multiplication",
            ),
        ] {
            match compile_err(src) {
                LangError::Eval { line, message } => {
                    assert_eq!(line, 2, "{src}");
                    assert!(message.contains(what), "{message}");
                }
                other => panic!("expected Eval error, got {other:?}"),
            }
        }
    }

    #[test]
    fn point_arithmetic_overflow_is_checked() {
        let e = compile_err("let p = pt(9223372036854775807, 0);\nlet q = p + pt(1, 0);");
        assert!(e.to_string().contains("overflow"), "{e}");
        let e = compile_err("let p = pt(9223372036854775807, 1);\nlet q = p * 2;");
        assert!(e.to_string().contains("overflow"), "{e}");
        let e = compile_err("let p = pt(9223372036854775807, 1);\nlet q = 2 * p;");
        assert!(e.to_string().contains("overflow"), "{e}");
        let e = compile_err("let p = pt(0 - 9223372036854775807, 0);\nlet q = p - pt(2, 0);");
        assert!(e.to_string().contains("overflow"), "{e}");
    }

    #[test]
    fn in_range_arithmetic_still_works() {
        let d =
            compile("let big = 4611686018427387903;\nlet ok = big + big;\nbox metal (0,0) (4,4);");
        assert_eq!(d.library.cell(d.top).unwrap().elements().len(), 1);
    }

    #[test]
    fn tracer_records_compile_stages() {
        use silc_trace::Tracer;
        let tracer = Tracer::enabled();
        Compiler::new()
            .with_tracer(tracer.clone())
            .compile(
                "cell bit() { box diff (0,0) (2,2); }
                 place bit() at (0,0);
                 place bit() at (10,0);",
            )
            .unwrap();
        let report = tracer.finish();
        for stage in ["lang.lex", "lang.parse", "lang.elaborate"] {
            assert!(
                report.spans().iter().any(|s| s.name == stage),
                "missing {stage}: {:?}",
                report.spans()
            );
        }
        // bit elaborated once, memo hit on the second placement.
        assert_eq!(report.counter("lang.cells_elaborated"), Some(1));
        assert_eq!(report.counter("lang.memo_hits"), Some(1));
        // Library holds bit + main.
        assert_eq!(report.counter("lang.cells"), Some(2));
    }

    #[test]
    fn simple_box_in_top() {
        let d = compile("box metal (0, 0) (4, 4);");
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements().len(), 1);
        assert_eq!(top.elements()[0].layer, Layer::Metal);
    }

    #[test]
    fn cell_definition_and_place() {
        let d = compile(
            "cell inv() { box diff (0,0) (2,8); }
             place inv() at (10, 20);",
        );
        assert!(d.library.cell_by_name("inv").is_some());
        let flat = flatten(&d.library, d.top).unwrap();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].element.bbox().min(), Point::new(10, 20));
    }

    #[test]
    fn parameterised_cells_are_memoized() {
        let d = compile(
            "cell bar(w) { box metal (0,0) (w, 10); }
             place bar(4) at (0,0);
             place bar(4) at (20,0);
             place bar(6) at (40,0);",
        );
        // Two variants: bar$i4 and bar$i6.
        assert_eq!(d.library.len(), 3); // 2 variants + main
        let flat = flatten(&d.library, d.top).unwrap();
        assert_eq!(flat.len(), 3);
    }

    #[test]
    fn default_parameters() {
        let d = compile(
            "cell pad(size = 8) { box metal (0,0) (size, size); }
             place pad() at (0,0);
             place pad(12) at (20,0);",
        );
        let flat = flatten(&d.library, d.top).unwrap();
        let mut widths: Vec<i64> = flat.iter().map(|f| f.element.bbox().width()).collect();
        widths.sort_unstable();
        assert_eq!(widths, vec![8, 12]);
    }

    #[test]
    fn arrays_expand() {
        let d = compile(
            "cell bit() { box diff (0,0) (3,3); }
             array bit() at (0,0) step (5, 0) count 4;",
        );
        let flat = flatten(&d.library, d.top).unwrap();
        assert_eq!(flat.len(), 4);
        // Native array instance used (one instance, 4 copies).
        assert_eq!(d.library.cell(d.top).unwrap().instances().len(), 1);
    }

    #[test]
    fn two_dimensional_array() {
        let d = compile(
            "cell bit() { box diff (0,0) (3,3); }
             array bit() at (0,0) step (5,0) (0,7) count 4 3;",
        );
        let flat = flatten(&d.library, d.top).unwrap();
        assert_eq!(flat.len(), 12);
    }

    #[test]
    fn diagonal_array_expands_to_places() {
        let d = compile(
            "cell bit() { box diff (0,0) (3,3); }
             array bit() at (0,0) step (5, 5) count 3;",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.instances().len(), 3);
        let flat = flatten(&d.library, d.top).unwrap();
        assert!(flat
            .iter()
            .any(|f| f.element.bbox().min() == Point::new(10, 10)));
    }

    #[test]
    fn for_loops_and_conditionals() {
        let d = compile(
            "for i in 0..6 {
                if i % 2 == 0 { box metal (i * 10, 0) (i * 10 + 3, 3); }
             }",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements().len(), 3);
    }

    #[test]
    fn functions_compute_values() {
        let d = compile(
            "fn pitch(n) -> int { return n * 7; }
             box metal (0, 0) (pitch(2), 3);",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].bbox().width(), 14);
    }

    #[test]
    fn recursive_function_works() {
        let d = compile(
            "fn fact(n) { if n <= 1 { return 1; } return n * fact(n - 1); }
             box metal (0,0) (fact(4), 2);",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].bbox().width(), 24);
    }

    #[test]
    fn records_compose() {
        let d = compile(
            "type pitch { dx: int, dy: int }
             let p = pitch { dx: 9, dy: 4 };
             box metal (0, 0) (p.dx, p.dy);",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].bbox().width(), 9);
        assert_eq!(top.elements()[0].bbox().height(), 4);
    }

    #[test]
    fn record_field_validation() {
        let err = Compiler::new()
            .compile("type t { a: int } let x = t { b: 1 };")
            .unwrap_err();
        assert!(err.to_string().contains('a') || err.to_string().contains('b'));
    }

    #[test]
    fn points_are_values() {
        let d = compile(
            "let origin = (5, 5);
             let size = (4, 2);
             box metal origin origin + size;",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].bbox().max(), Point::new(9, 7));
    }

    #[test]
    fn nested_hierarchy() {
        let d = compile(
            "cell bit() { box diff (0,0) (2,2); }
             cell word(n) { array bit() at (0,0) step (4,0) count n; }
             cell memory(rows, n) { array word(n) at (0,0) step (0,0) (0, 5) count 1 rows; }
             place memory(4, 8) at (0,0);",
        );
        let flat = flatten(&d.library, d.top).unwrap();
        assert_eq!(flat.len(), 32);
        // Hierarchy preserved: library has bit, word$i8, memory$..., main.
        assert_eq!(d.library.len(), 4);
    }

    #[test]
    fn orientations_compose() {
        let d = compile(
            "cell mark() { box metal (0,0) (4,1); }
             place mark() at (0,0) rot 90;",
        );
        let flat = flatten(&d.library, d.top).unwrap();
        let b = flat[0].element.bbox();
        assert_eq!((b.width(), b.height()), (1, 4));
    }

    #[test]
    fn ports_recorded() {
        let d = compile("cell c() { port out metal (3, 4); } place c() at (0,0);");
        let id = d.library.cell_by_name("c").unwrap();
        let cell = d.library.cell(id).unwrap();
        assert_eq!(cell.port("out").unwrap().at, Point::new(3, 4));
    }

    #[test]
    fn wires_and_polygons() {
        let d = compile(
            "wire metal 3 (0,0) (20,0) (20,15);
             polygon poly (0,0) (8,0) (0,8);",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements().len(), 2);
    }

    #[test]
    fn errors_report_lines() {
        let err = Compiler::new()
            .compile("let a = 1;\nbox metal (0,0) (0, 5);\n")
            .unwrap_err();
        match err {
            LangError::Eval { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_cell_diagnosed() {
        let err = Compiler::new()
            .compile("place ghost() at (0,0);")
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn recursive_cell_rejected() {
        let err = Compiler::new()
            .compile("cell a() { place a() at (5,5); } place a() at (0,0);")
            .unwrap_err();
        assert!(matches!(err, LangError::RecursiveCell { .. }));
    }

    #[test]
    fn division_by_zero_diagnosed() {
        let err = Compiler::new().compile("let x = 1 / 0;").unwrap_err();
        assert!(err.to_string().contains("zero"));
    }

    #[test]
    fn geometry_in_fn_rejected() {
        let err = Compiler::new()
            .compile("fn bad() { box metal (0,0) (1,1); } let x = bad();")
            .unwrap_err();
        assert!(err.to_string().contains("fn"));
    }

    #[test]
    fn builtins() {
        let d = compile(
            "let l = [3, 9, 2];
             box metal (0,0) (max(len(l), abs(0 - 2)), min(4, 7));",
        );
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].bbox().width(), 3);
        assert_eq!(top.elements()[0].bbox().height(), 4);
    }

    #[test]
    fn string_layers_via_parens() {
        let d = compile(r#"let l = "metal"; box (l) (0,0) (2,2);"#);
        let top = d.library.cell(d.top).unwrap();
        assert_eq!(top.elements()[0].layer, Layer::Metal);
    }

    #[test]
    fn unknown_layer_diagnosed() {
        let err = Compiler::new()
            .compile("box metal9 (0,0) (1,1);")
            .unwrap_err();
        assert!(err.to_string().contains("metal9"));
    }
}
