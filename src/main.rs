//! `silc` — the command-line face of the silicon compiler (the paper's
//! "extensible language system with associated programming environment").
//!
//! ```text
//! silc compile <design.sil> [-o out.cif] [--no-drc]   SIL -> DRC -> CIF
//! silc sim     <machine.isl> [--cycles N]             simulate an ISP description
//! silc synth   <machine.isl>                          compile it onto standard modules
//! silc pla     <table.pla> [-o out.cif] [--raw]       espresso table -> minimized PLA -> CIF
//! ```
//!
//! Every subcommand also accepts `--stats` (per-stage wall-time and
//! counter summary on stderr) and `--trace <file>` (machine-readable
//! JSONL event stream).

use std::fs;
use std::io::Write;
use std::process::ExitCode;

use silc::cif::CifWriter;
use silc::drc::{check_traced, RuleSet};
use silc::lang::Compiler;
use silc::layout::{CellStats, Library};
use silc::logic::TruthTable;
use silc::pla::{generate_layout_traced, Minimize, PlaSpec};
use silc::rtl::{parse as parse_isl, Simulator};
use silc::synth::{synthesize_traced, Sharing, SynthOptions};
use silc::trace::{span, JsonlSink, StatsSink, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("pla") => cmd_pla(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("silc: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  silc compile <design.sil> [-o out.cif] [--no-drc]
  silc sim     <machine.isl> [--cycles N]
  silc synth   <machine.isl>
  silc pla     <table.pla> [-o out.cif] [--raw]
common flags:
  --stats            per-stage timing and counter summary on stderr
  --trace <file>     JSONL event stream (one object per span/counter)
";

struct Opts {
    input: String,
    output: Option<String>,
    no_drc: bool,
    raw: bool,
    cycles: u64,
    stats: bool,
    trace: Option<String>,
}

impl Opts {
    /// A tracer that records only when the user asked for output.
    fn tracer(&self) -> Tracer {
        if self.stats || self.trace.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }
}

fn parse_opts(cmd: &str, args: &[String]) -> Result<Opts, String> {
    let mut input = None;
    let mut output = None;
    let mut no_drc = false;
    let mut raw = false;
    let mut cycles = 10_000;
    let mut stats = false;
    let mut trace = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" if matches!(cmd, "compile" | "pla") => {
                output = Some(
                    it.next()
                        .ok_or_else(|| "-o needs a file name".to_string())?
                        .clone(),
                );
            }
            "--cycles" if cmd == "sim" => {
                cycles = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "--cycles needs a number".to_string())?;
            }
            "--no-drc" if cmd == "compile" => no_drc = true,
            "--raw" if cmd == "pla" => raw = true,
            "--stats" => stats = true,
            "--trace" => {
                trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace needs a file name".to_string())?
                        .clone(),
                );
            }
            f if f.starts_with('-') => {
                return Err(match f {
                    "--cycles" => {
                        format!("`--cycles` is only valid for `silc sim`, not `silc {cmd}`")
                    }
                    "--no-drc" => {
                        format!("`--no-drc` is only valid for `silc compile`, not `silc {cmd}`")
                    }
                    "--raw" => format!("`--raw` is only valid for `silc pla`, not `silc {cmd}`"),
                    "-o" => format!(
                        "`-o` is only valid for `silc compile` and `silc pla`, not `silc {cmd}`"
                    ),
                    _ => format!("unknown flag `{f}` for `silc {cmd}`\n{USAGE}"),
                });
            }
            positional => {
                if input.replace(positional.to_string()).is_some() {
                    return Err("more than one input file given".into());
                }
            }
        }
    }
    Ok(Opts {
        input: input.ok_or_else(|| format!("missing input file\n{USAGE}"))?,
        output,
        no_drc,
        raw,
        cycles,
        stats,
        trace,
    })
}

/// Flushes the recorded events to the sinks the user asked for. Runs even
/// when the command failed, so a DRC abort still yields its stage timings.
fn emit_trace(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    if !tracer.is_enabled() {
        return Ok(());
    }
    let report = tracer.finish();
    if opts.stats {
        let mut stderr = std::io::stderr().lock();
        report
            .emit(&mut StatsSink::new(&mut stderr))
            .and_then(|()| stderr.flush())
            .map_err(|e| format!("cannot write stats: {e}"))?;
    }
    if let Some(path) = &opts.trace {
        let file = fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        report
            .emit(&mut JsonlSink::new(&mut writer))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn write_out(path: Option<&str>, text: &str) -> Result<(), String> {
    match path {
        Some(p) => fs::write(p, text).map_err(|e| format!("cannot write `{p}`: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("compile", args)?;
    let tracer = opts.tracer();
    let result = run_compile(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_compile(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let source = read(&opts.input)?;
    let design = Compiler::new()
        .with_tracer(tracer.clone())
        .compile(&source)
        .map_err(|e| e.to_string())?;
    let stats = CellStats::compute(&design.library, design.top).map_err(|e| e.to_string())?;
    eprintln!(
        "compiled `{}`: {} cells, {} flattened elements, die {}x{} lambda",
        opts.input,
        design.library.len(),
        stats.flat_elements,
        stats.bbox.map_or(0, |b| b.width()),
        stats.bbox.map_or(0, |b| b.height()),
    );
    if !opts.no_drc {
        let report = check_traced(
            &design.library,
            design.top,
            &RuleSet::mead_conway_nmos(),
            tracer,
        )
        .map_err(|e| e.to_string())?;
        eprint!("{report}");
        if !report.is_clean() {
            return Err("design rule violations (use --no-drc to emit anyway)".into());
        }
    }
    let cif = CifWriter::new()
        .with_tracer(tracer.clone())
        .write_to_string(&design.library, design.top)
        .map_err(|e| e.to_string())?;
    write_out(opts.output.as_deref(), &cif)
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("sim", args)?;
    let tracer = opts.tracer();
    let result = run_sim(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_sim(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let source = read(&opts.input)?;
    let machine = {
        let _s = span!(tracer, "isl.parse");
        parse_isl(&source).map_err(|e| e.to_string())?
    };
    let mut sim = Simulator::new(&machine);
    let report = {
        let _s = span!(tracer, "sim.run");
        sim.run(opts.cycles).map_err(|e| e.to_string())?
    };
    tracer.add("sim.cycles", report.cycles);
    println!(
        "{}: {} cycle(s), {} (final state `{}`)",
        machine.name,
        report.cycles,
        if report.halted {
            "halted"
        } else {
            "cycle budget exhausted"
        },
        sim.state_name(),
    );
    for r in &machine.regs {
        let value = sim
            .reg(&r.name)
            .ok_or_else(|| format!("simulator has no register `{}`", r.name))?;
        println!("  {} = {value:#o}", r.name);
    }
    for p in &machine.outputs {
        let value = sim
            .output(&p.name)
            .ok_or_else(|| format!("simulator has no output `{}`", p.name))?;
        println!("  {} = {value:#o} (output)", p.name);
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("synth", args)?;
    let tracer = opts.tracer();
    let result = run_synth(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_synth(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let source = read(&opts.input)?;
    let machine = {
        let _s = span!(tracer, "isl.parse");
        parse_isl(&source).map_err(|e| e.to_string())?
    };
    let shared = synthesize_traced(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
        tracer,
    );
    println!("{shared}");
    let (bits, inputs, outputs, terms) = shared.control;
    println!("control: {bits} state bits, PLA {inputs} in / {outputs} out / {terms} terms");
    Ok(())
}

fn cmd_pla(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("pla", args)?;
    let tracer = opts.tracer();
    let result = run_pla(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_pla(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let table = TruthTable::parse_pla(&read(&opts.input)?).map_err(|e| e.to_string())?;
    let mode = if opts.raw {
        Minimize::None
    } else {
        Minimize::Heuristic
    };
    let spec = PlaSpec::from_truth_table_traced(&table, mode, tracer).map_err(|e| e.to_string())?;
    let (w, h) = spec.area_estimate();
    eprintln!(
        "personality: {} terms ({} AND + {} OR devices), {}x{} lambda",
        spec.num_terms(),
        spec.and_plane_devices(),
        spec.or_plane_devices(),
        w,
        h
    );
    let mut lib = Library::new();
    let id = generate_layout_traced(&spec, &mut lib, "pla", tracer).map_err(|e| e.to_string())?;
    let report =
        check_traced(&lib, id, &RuleSet::mead_conway_nmos(), tracer).map_err(|e| e.to_string())?;
    eprint!("{report}");
    let cif = CifWriter::new()
        .with_tracer(tracer.clone())
        .write_to_string(&lib, id)
        .map_err(|e| e.to_string())?;
    write_out(opts.output.as_deref(), &cif)
}
