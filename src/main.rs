//! `silc` — the command-line face of the silicon compiler (the paper's
//! "extensible language system with associated programming environment").
//!
//! ```text
//! silc compile <design.sil> [-o out.cif] [--no-drc]   SIL -> DRC -> CIF
//! silc sim     <machine.isl> [--cycles N] [--engine E] simulate an ISP description
//! silc synth   <machine.isl>                          compile it onto standard modules
//! silc pla     <table.pla> [-o out.cif] [--raw]       espresso table -> minimized PLA -> CIF
//! silc pnr     <design.sil> [-o out.cif] [--stack S]  place and route the extracted netlist
//! silc verify  <file.pla|.isl|.sil> [--against FILE]  equivalence-check an artifact against its spec
//! silc batch   <manifest> [--jobs N] [--shards N]     run many jobs against one shared cache
//! silc serve   [--addr HOST:PORT] [--jobs N] [--shards N] compile server over newline-delimited JSON
//! ```
//!
//! Every subcommand also accepts `--stats` (per-stage wall-time and
//! counter summary on stderr), `--trace <file>` (machine-readable JSONL
//! event stream), and `--cache <dir>` (persistent incremental cache: an
//! unchanged design recompiles from stage results on disk).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use silc::drc::RuleSet;
use silc::exec::SimEngine;
use silc::incr::{
    cif_text, default_parallelism, drc_report, elaborate, flat_regions, parse_manifest,
    pla_products, pnr_sil, run_batch, sim_results, synth_allocation, verify_against, verify_isl,
    verify_pla, verify_sil, Engine, EngineConfig, JobStats,
};
use silc::rtl::parse as parse_isl;
use silc::serve::{install_sigint_handler, Server, ServerConfig};
use silc::trace::{span, JsonlSink, StatsSink, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("pla") => cmd_pla(&args[1..]),
        Some("pnr") => cmd_pnr(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("silc: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  silc compile <design.sil> [-o out.cif] [--no-drc]
  silc sim     <machine.isl> [--cycles N] [--engine compiled|interp]
  silc synth   <machine.isl>
  silc pla     <table.pla> [-o out.cif] [--raw]
  silc pnr     <design.sil> [-o out.cif] [--stack NAME] [--jobs N]
  silc verify  <file.pla|.isl|.sil> [--against FILE] [--stack NAME]
  silc batch   <manifest> [--jobs N] [--shards N] [--engine compiled|interp]
  silc serve   [--addr HOST:PORT] [--jobs N] [--shards N] [--engine compiled|interp]
common flags:
  --stats            per-stage timing and counter summary on stderr
  --trace <file>     JSONL event stream (one object per span/counter)
  --cache <dir>      persistent incremental cache shared across runs
  --no-cache         force a cold run (conflicts with --cache)
";

struct Opts {
    input: String,
    output: Option<String>,
    stack: Option<String>,
    against: Option<String>,
    no_drc: bool,
    raw: bool,
    cycles: u64,
    sim_engine: SimEngine,
    jobs: Option<usize>,
    shards: Option<usize>,
    addr: Option<String>,
    cache: Option<String>,
    stats: bool,
    trace: Option<String>,
}

impl Opts {
    /// A tracer that records only when the user asked for output.
    fn tracer(&self) -> Tracer {
        if self.stats || self.trace.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// The query engine every subcommand compiles through: persistent
    /// when `--cache <dir>` was given, in-memory otherwise.
    fn engine(&self, tracer: &Tracer) -> Result<Engine, String> {
        let defaults = EngineConfig::default();
        Engine::new(EngineConfig {
            cache_dir: self.cache.as_ref().map(PathBuf::from),
            tracer: tracer.clone(),
            shards: self.shards.unwrap_or(defaults.shards),
            ..defaults
        })
    }
}

fn parse_opts(cmd: &str, args: &[String]) -> Result<Opts, String> {
    let mut input = None;
    let mut output = None;
    let mut stack = None;
    let mut against = None;
    let mut no_drc = false;
    let mut raw = false;
    let mut cycles = None;
    let mut sim_engine = None;
    let mut jobs = None;
    let mut shards = None;
    let mut addr = None;
    let mut cache = None;
    let mut no_cache = false;
    let mut stats = false;
    let mut trace = None;
    let mut it = args.iter();
    // Every flag may appear at most once; a repeat is an error naming it.
    let dup = |flag: &str| format!("duplicate flag `{flag}`");
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" if matches!(cmd, "compile" | "pla" | "pnr") => {
                let value = it
                    .next()
                    .ok_or_else(|| "-o needs a file name".to_string())?
                    .clone();
                if output.replace(value).is_some() {
                    return Err(dup("-o"));
                }
            }
            "--cycles" if cmd == "sim" => {
                let value = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| "--cycles needs a number".to_string())?;
                if cycles.replace(value).is_some() {
                    return Err(dup("--cycles"));
                }
            }
            "--engine" if matches!(cmd, "sim" | "batch" | "serve") => {
                let value: SimEngine = it
                    .next()
                    .ok_or_else(|| format!("--engine needs a name ({})", SimEngine::NAMES))?
                    .parse()?;
                if sim_engine.replace(value).is_some() {
                    return Err(dup("--engine"));
                }
            }
            "--addr" if cmd == "serve" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--addr needs a HOST:PORT".to_string())?
                    .clone();
                if addr.replace(value).is_some() {
                    return Err(dup("--addr"));
                }
            }
            "--against" if cmd == "verify" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--against needs a file name".to_string())?
                    .clone();
                if against.replace(value).is_some() {
                    return Err(dup("--against"));
                }
            }
            "--stack" if matches!(cmd, "pnr" | "verify") => {
                let value = it
                    .next()
                    .ok_or_else(|| {
                        format!(
                            "--stack needs a name ({})",
                            silc::pnr::RouteStack::KNOWN.join(", ")
                        )
                    })?
                    .clone();
                if stack.replace(value).is_some() {
                    return Err(dup("--stack"));
                }
            }
            "--jobs" if matches!(cmd, "batch" | "serve" | "pnr") => {
                let value = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs needs a positive number".to_string())?;
                if jobs.replace(value).is_some() {
                    return Err(dup("--jobs"));
                }
            }
            "--shards" if matches!(cmd, "batch" | "serve") => {
                let value = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--shards needs a positive number".to_string())?;
                if shards.replace(value).is_some() {
                    return Err(dup("--shards"));
                }
            }
            "--no-drc" if cmd == "compile" => {
                if no_drc {
                    return Err(dup("--no-drc"));
                }
                no_drc = true;
            }
            "--raw" if cmd == "pla" => {
                if raw {
                    return Err(dup("--raw"));
                }
                raw = true;
            }
            "--cache" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--cache needs a directory".to_string())?
                    .clone();
                if cache.replace(value).is_some() {
                    return Err(dup("--cache"));
                }
            }
            "--no-cache" => {
                if no_cache {
                    return Err(dup("--no-cache"));
                }
                no_cache = true;
            }
            "--stats" => {
                if stats {
                    return Err(dup("--stats"));
                }
                stats = true;
            }
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--trace needs a file name".to_string())?
                    .clone();
                if trace.replace(value).is_some() {
                    return Err(dup("--trace"));
                }
            }
            f if f.starts_with('-') => {
                return Err(match f {
                    "--cycles" => {
                        format!("`--cycles` is only valid for `silc sim`, not `silc {cmd}`")
                    }
                    "--jobs" => format!(
                        "`--jobs` is only valid for `silc batch`, `silc serve` and `silc pnr`, \
                         not `silc {cmd}`"
                    ),
                    "--stack" => format!(
                        "`--stack` is only valid for `silc pnr` and `silc verify`, \
                         not `silc {cmd}`"
                    ),
                    "--against" => {
                        format!("`--against` is only valid for `silc verify`, not `silc {cmd}`")
                    }
                    "--shards" => format!(
                        "`--shards` is only valid for `silc batch` and `silc serve`, \
                         not `silc {cmd}`"
                    ),
                    "--engine" => format!(
                        "`--engine` is only valid for `silc sim`, `silc batch` and `silc serve`, \
                         not `silc {cmd}`"
                    ),
                    "--addr" => {
                        format!("`--addr` is only valid for `silc serve`, not `silc {cmd}`")
                    }
                    "--no-drc" => {
                        format!("`--no-drc` is only valid for `silc compile`, not `silc {cmd}`")
                    }
                    "--raw" => format!("`--raw` is only valid for `silc pla`, not `silc {cmd}`"),
                    "-o" => format!(
                        "`-o` is only valid for `silc compile`, `silc pla` and `silc pnr`, \
                         not `silc {cmd}`"
                    ),
                    _ => format!("unknown flag `{f}` for `silc {cmd}`\n{USAGE}"),
                });
            }
            positional => {
                if input.replace(positional.to_string()).is_some() {
                    return Err("more than one input file given".into());
                }
            }
        }
    }
    if no_cache && cache.is_some() {
        return Err("`--no-cache` conflicts with `--cache`".into());
    }
    // `serve` is the one daemon: it listens instead of reading a file.
    let input = if cmd == "serve" {
        if let Some(file) = input {
            return Err(format!("`silc serve` takes no input file (got `{file}`)"));
        }
        String::new()
    } else {
        input.ok_or_else(|| format!("missing input file\n{USAGE}"))?
    };
    Ok(Opts {
        input,
        output,
        stack,
        against,
        no_drc,
        raw,
        cycles: cycles.unwrap_or(10_000),
        sim_engine: sim_engine.unwrap_or_default(),
        jobs,
        shards,
        addr,
        cache,
        stats,
        trace,
    })
}

/// Flushes the recorded events to the sinks the user asked for. Runs even
/// when the command failed, so a DRC abort still yields its stage timings.
fn emit_trace(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    if !tracer.is_enabled() {
        return Ok(());
    }
    let report = tracer.finish();
    if opts.stats {
        let mut stderr = std::io::stderr().lock();
        report
            .emit(&mut StatsSink::new(&mut stderr))
            .and_then(|()| stderr.flush())
            .map_err(|e| format!("cannot write stats: {e}"))?;
    }
    if let Some(path) = &opts.trace {
        let file = fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        report
            .emit(&mut JsonlSink::new(&mut writer))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn write_out(path: Option<&str>, text: &str) -> Result<(), String> {
    match path {
        Some(p) => fs::write(p, text).map_err(|e| format!("cannot write `{p}`: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("compile", args)?;
    let tracer = opts.tracer();
    let result = run_compile(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_compile(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    let design = elaborate(&engine, &source, &mut stats)?;
    let flat = flat_regions(&engine, &design, &mut stats)?;
    eprintln!(
        "compiled `{}`: {} cells, {} flattened elements, die {}x{} lambda",
        opts.input,
        design.library.len(),
        flat.flat_elements,
        flat.bbox.map_or(0, |b| b.width()),
        flat.bbox.map_or(0, |b| b.height()),
    );
    if !opts.no_drc {
        let report = drc_report(&engine, &flat, &RuleSet::mead_conway_nmos(), &mut stats)?;
        eprint!("{report}");
        if !report.is_clean() {
            return Err("design rule violations (use --no-drc to emit anyway)".into());
        }
    }
    let cif = cif_text(&engine, &design, &mut stats)?;
    write_out(opts.output.as_deref(), &cif)
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("sim", args)?;
    let tracer = opts.tracer();
    let result = run_sim(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_sim(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    let machine = {
        let _s = span!(tracer, "isl.parse");
        parse_isl(&source).map_err(|e| e.to_string())?
    };
    let sim = sim_results(&engine, &machine, opts.cycles, opts.sim_engine, &mut stats)?;
    println!(
        "{}: {} cycle(s), {} (final state `{}`)",
        machine.name,
        sim.cycles,
        if sim.halted {
            "halted"
        } else {
            "cycle budget exhausted"
        },
        sim.state,
    );
    for (name, value) in &sim.regs {
        println!("  {name} = {value:#o}");
    }
    for (name, value) in &sim.outputs {
        println!("  {name} = {value:#o} (output)");
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("synth", args)?;
    let tracer = opts.tracer();
    let result = run_synth(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_synth(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    let machine = {
        let _s = span!(tracer, "isl.parse");
        parse_isl(&source).map_err(|e| e.to_string())?
    };
    let shared = synth_allocation(&engine, &machine, &mut stats)?;
    println!("{}", shared.display);
    let (bits, inputs, outputs, terms) = shared.control;
    println!("control: {bits} state bits, PLA {inputs} in / {outputs} out / {terms} terms");
    Ok(())
}

fn cmd_pla(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("pla", args)?;
    let tracer = opts.tracer();
    let result = run_pla(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_pla(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    let products = pla_products(&engine, &source, opts.raw, &mut stats)?;
    eprintln!("{}", products.personality);
    eprint!("{}", products.report);
    write_out(opts.output.as_deref(), &products.cif)
}

fn cmd_pnr(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("pnr", args)?;
    let tracer = opts.tracer();
    let result = run_pnr(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_pnr(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    // `--jobs 1` forces the serial router; anything else (including the
    // default) routes net batches in parallel. Both produce the same
    // bytes, so the cache key does not mention it.
    let parallel = opts.jobs.is_none_or(|j| j > 1);
    let stack = opts
        .stack
        .as_deref()
        .unwrap_or(silc::pnr::RouteStack::KNOWN[0]);
    let snap = pnr_sil(&engine, &source, stack, parallel, &mut stats)?;
    eprintln!(
        "routed `{}`: {} cells, {}/{} nets, wirelength {}, {} via(s), \
         {} routing round(s) ({} rip-up), drc clean, extract-back ok",
        opts.input,
        snap.cells,
        snap.routed,
        snap.nets,
        snap.wirelength,
        snap.vias,
        snap.rounds,
        snap.ripup_rounds,
    );
    write_out(opts.output.as_deref(), &snap.cif)
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("verify", args)?;
    let tracer = opts.tracer();
    let result = run_verify(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_verify(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let mut stats = JobStats::default();
    let source = read(&opts.input)?;
    let ext = Path::new(&opts.input)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let snap = match (&opts.against, ext) {
        (Some(spec_path), "pla") => {
            let spec = read(spec_path)?;
            verify_against(&engine, &source, &spec, &mut stats)?
        }
        (Some(_), _) => {
            return Err(format!(
                "`--against` checks one PLA table against another; got `{}`",
                opts.input
            ))
        }
        (None, "pla") => verify_pla(&engine, &source, &mut stats)?,
        (None, "isl") => verify_isl(&engine, &source, &mut stats)?,
        (None, "sil") => {
            let stack = opts
                .stack
                .as_deref()
                .unwrap_or(silc::pnr::RouteStack::KNOWN[0]);
            verify_sil(&engine, &source, stack, &mut stats)?
        }
        (None, _) => {
            return Err(format!(
                "verify needs a `.pla`, `.isl` or `.sil` input, got `{}`",
                opts.input
            ))
        }
    };
    eprintln!("{}", snap.summary());
    for m in &snap.mismatches {
        eprintln!("  {m}");
    }
    if !snap.equivalent {
        return Err(format!(
            "`{}` is NOT equivalent to its specification",
            opts.input
        ));
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("batch", args)?;
    let tracer = opts.tracer();
    let result = run_batch_cmd(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_batch_cmd(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let engine = opts.engine(tracer)?;
    let text = read(&opts.input)?;
    let base = Path::new(&opts.input)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf();
    let jobs = parse_manifest(&text, &base)?;
    if jobs.is_empty() {
        return Err(format!("manifest `{}` has no jobs", opts.input));
    }
    let results = run_batch(
        &engine,
        &jobs,
        opts.jobs.unwrap_or_else(default_parallelism),
        opts.sim_engine,
    );
    let label_width = results
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(0)
        .max("job".len());
    eprintln!(
        "{:<label_width$}  {:>6}  {:>4}  {:>4}  {:>7}  detail",
        "job", "status", "hit", "miss", "time"
    );
    let mut failed = 0usize;
    for r in &results {
        let (status, detail) = match &r.outcome {
            Ok(summary) => ("ok", summary.as_str()),
            Err(message) => {
                failed += 1;
                ("FAIL", message.as_str())
            }
        };
        eprintln!(
            "{:<label_width$}  {:>6}  {:>4}  {:>4}  {:>5}ms  {}",
            r.label, status, r.stats.hits, r.stats.misses, r.millis, detail
        );
    }
    eprintln!(
        "batch: {} job(s), {} ok, {} failed",
        results.len(),
        results.len() - failed,
        failed
    );
    if failed > 0 {
        return Err(format!("{failed} batch job(s) failed"));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let opts = parse_opts("serve", args)?;
    let tracer = opts.tracer();
    let result = run_serve(&opts, &tracer);
    emit_trace(&opts, &tracer).and(result)
}

fn run_serve(opts: &Opts, tracer: &Tracer) -> Result<(), String> {
    let mut config = ServerConfig {
        cache_dir: opts.cache.as_ref().map(PathBuf::from),
        tracer: tracer.clone(),
        default_engine: opts.sim_engine,
        ..ServerConfig::default()
    };
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    if let Some(jobs) = opts.jobs {
        config.jobs = jobs;
        config.queue_capacity = jobs * 4;
    }
    if let Some(shards) = opts.shards {
        config.shards = shards;
    }
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    install_sigint_handler();
    eprintln!("silc serve: listening on {addr}; send {{\"op\":\"shutdown\"}} or SIGINT to stop");
    server.run()
}
