//! `silc` — the command-line face of the silicon compiler (the paper's
//! "extensible language system with associated programming environment").
//!
//! ```text
//! silc compile <design.sil> [-o out.cif] [--no-drc]   SIL -> DRC -> CIF
//! silc sim     <machine.isl> [--cycles N]             simulate an ISP description
//! silc synth   <machine.isl>                          compile it onto standard modules
//! silc pla     <table.pla> [-o out.cif] [--raw]       espresso table -> minimized PLA -> CIF
//! ```

use std::fs;
use std::process::ExitCode;

use silc::cif::CifWriter;
use silc::drc::{check, RuleSet};
use silc::lang::Compiler;
use silc::layout::{CellStats, Library};
use silc::logic::TruthTable;
use silc::pla::{generate_layout, Minimize, PlaSpec};
use silc::rtl::{parse as parse_isl, Simulator};
use silc::synth::{synthesize, Sharing, SynthOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("pla") => cmd_pla(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("silc: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  silc compile <design.sil> [-o out.cif] [--no-drc]
  silc sim     <machine.isl> [--cycles N]
  silc synth   <machine.isl>
  silc pla     <table.pla> [-o out.cif] [--raw]
";

struct Opts {
    input: String,
    output: Option<String>,
    flags: Vec<String>,
    cycles: u64,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut input = None;
    let mut output = None;
    let mut flags = Vec::new();
    let mut cycles = 10_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| "-o needs a file name".to_string())?
                        .clone(),
                );
            }
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "--cycles needs a number".to_string())?;
            }
            f if f.starts_with("--") => flags.push(f.to_string()),
            positional => {
                if input.replace(positional.to_string()).is_some() {
                    return Err("more than one input file given".into());
                }
            }
        }
    }
    Ok(Opts {
        input: input.ok_or_else(|| format!("missing input file\n{USAGE}"))?,
        output,
        flags,
        cycles,
    })
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn write_out(path: Option<&str>, text: &str) -> Result<(), String> {
    match path {
        Some(p) => fs::write(p, text).map_err(|e| format!("cannot write `{p}`: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let source = read(&opts.input)?;
    let design = Compiler::new()
        .compile(&source)
        .map_err(|e| e.to_string())?;
    let stats = CellStats::compute(&design.library, design.top).map_err(|e| e.to_string())?;
    eprintln!(
        "compiled `{}`: {} cells, {} flattened elements, die {}x{} lambda",
        opts.input,
        design.library.len(),
        stats.flat_elements,
        stats.bbox.map_or(0, |b| b.width()),
        stats.bbox.map_or(0, |b| b.height()),
    );
    if !opts.flags.iter().any(|f| f == "--no-drc") {
        let report = check(&design.library, design.top, &RuleSet::mead_conway_nmos())
            .map_err(|e| e.to_string())?;
        eprint!("{report}");
        if !report.is_clean() {
            return Err("design rule violations (use --no-drc to emit anyway)".into());
        }
    }
    let cif = CifWriter::new()
        .write_to_string(&design.library, design.top)
        .map_err(|e| e.to_string())?;
    write_out(opts.output.as_deref(), &cif)
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let machine = parse_isl(&read(&opts.input)?).map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(&machine);
    let report = sim.run(opts.cycles).map_err(|e| e.to_string())?;
    println!(
        "{}: {} cycle(s), {} (final state `{}`)",
        machine.name,
        report.cycles,
        if report.halted {
            "halted"
        } else {
            "cycle budget exhausted"
        },
        sim.state_name(),
    );
    for r in &machine.regs {
        println!("  {} = {:#o}", r.name, sim.reg(&r.name).unwrap_or(0));
    }
    for p in &machine.outputs {
        println!(
            "  {} = {:#o} (output)",
            p.name,
            sim.output(&p.name).unwrap_or(0)
        );
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let machine = parse_isl(&read(&opts.input)?).map_err(|e| e.to_string())?;
    let shared = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    println!("{shared}");
    let (bits, inputs, outputs, terms) = shared.control;
    println!("control: {bits} state bits, PLA {inputs} in / {outputs} out / {terms} terms");
    Ok(())
}

fn cmd_pla(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let table = TruthTable::parse_pla(&read(&opts.input)?).map_err(|e| e.to_string())?;
    let mode = if opts.flags.iter().any(|f| f == "--raw") {
        Minimize::None
    } else {
        Minimize::Heuristic
    };
    let spec = PlaSpec::from_truth_table(&table, mode).map_err(|e| e.to_string())?;
    let (w, h) = spec.area_estimate();
    eprintln!(
        "personality: {} terms ({} AND + {} OR devices), {}x{} lambda",
        spec.num_terms(),
        spec.and_plane_devices(),
        spec.or_plane_devices(),
        w,
        h
    );
    let mut lib = Library::new();
    let id = generate_layout(&spec, &mut lib, "pla").map_err(|e| e.to_string())?;
    let report = check(&lib, id, &RuleSet::mead_conway_nmos()).map_err(|e| e.to_string())?;
    eprint!("{report}");
    let cif = CifWriter::new()
        .write_to_string(&lib, id)
        .map_err(|e| e.to_string())?;
    write_out(opts.output.as_deref(), &cif)
}
