//! # SILC — a silicon compiler
//!
//! Facade crate re-exporting the whole SILC toolkit: a Rust reproduction of
//! J.P. Gray's *Introduction to Silicon Compilation* (DAC 1979).
//!
//! The toolkit covers both definitions of silicon compilation the paper
//! gives:
//!
//! 1. **Structural**: the [`lang`] crate compiles SIL — an extensible,
//!    parameterised structural design language — into the hierarchical
//!    [`layout`] database, emitted as Caltech Intermediate Form via [`cif`]
//!    and checked by the lambda design-rule checker [`drc`].
//! 2. **Behavioral**: the [`rtl`] crate parses and simulates ISP-like
//!    behavioral descriptions, which [`synth`] maps onto a standard-module
//!    [`netlist`] with a package-count/area/delay cost model (the PDP-8
//!    experiment of the paper's reference \[6\]).
//!
//! Regular-block generators ([`pla`], [`mem`]), wiring management
//! ([`route`]), full-chip gridded place-and-route ([`pnr`]), a layout
//! extractor ([`extract`]), and an equivalence checker ([`verify`])
//! complete the flow.
//!
//! # Quickstart
//!
//! ```
//! use silc::lang::Compiler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!     cell inv() {
//!         box diff (0,0) (2,8);
//!         box poly (-2,3) (4,5);
//!     }
//!     place inv() at (0, 0);
//! "#;
//! let design = Compiler::new().compile(source)?;
//! assert!(design.library.cell_by_name("inv").is_some());
//! # Ok(())
//! # }
//! ```

pub use silc_cif as cif;
pub use silc_drc as drc;
pub use silc_exec as exec;
pub use silc_extract as extract;
pub use silc_geom as geom;
pub use silc_incr as incr;
pub use silc_lang as lang;
pub use silc_layout as layout;
pub use silc_logic as logic;
pub use silc_mem as mem;
pub use silc_netlist as netlist;
pub use silc_pdp8 as pdp8;
pub use silc_pla as pla;
pub use silc_pnr as pnr;
pub use silc_route as route;
pub use silc_rtl as rtl;
pub use silc_serve as serve;
pub use silc_synth as synth;
pub use silc_trace as trace;
pub use silc_verify as verify;
